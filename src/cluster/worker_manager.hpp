// The schedule machine of the cluster tier: registers WorkerProxy nodes,
// heartbeats them every tick, and drives sessions by dispatching work
// quanta (leases) to the best dispatchable node — the inter-node half of
// the two-tier balance (sched/node_balance.hpp); intra-node, each worker's
// private Algorithm-2 LP splits every frame across its own devices.
//
// Robustness contract, in one place:
//   * Every RPC is deadline-bounded and retried with jittered Backoff.
//   * Liveness comes from the HeartbeatMonitor; a death fences the node's
//     outstanding leases and reassigns them to survivors, resuming from the
//     last committed SessionCheckpoint — the spliced output stays
//     bit-identical to a solo encode.
//   * Every dispatch ATTEMPT bumps the session epoch and takes a fresh
//     lease id, so an uncertain submit ack (deadline-exceeded against a
//     hung node) can never lead to a double commit: at most one epoch is
//     live, and completions carrying any other epoch are dropped as fenced.
//   * Commits are sequential by construction (a session has at most one
//     outstanding lease, covering exactly [committed, committed+quantum)),
//     checked by FEVES_CHECK on every commit.
#pragma once

#include "cluster/heartbeat.hpp"
#include "cluster/worker.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace feves::cluster {

/// One cluster-scheduled encode session (virtual when `source` is null).
struct ClusterSessionConfig {
  EncoderConfig cfg;
  FrameworkOptions fw;  ///< trace is stripped worker-side; set opts.trace
                        ///< on the manager for cluster-lane events instead
  int frames = 8;
  PerturbationSchedule perturbations;
  FaultSchedule device_faults;
  std::shared_ptr<VideoSource> source;
  SimdTier tier = SimdTier::kAuto;
  /// Frames per lease: the reassignment quantum. Smaller = less work lost
  /// per node death, more dispatch overhead.
  int chunk_frames = 2;
};

struct ClusterSessionResult {
  int id = -1;
  TerminalReason reason = TerminalReason::kError;
  std::string error;
  std::vector<FrameStats> frames;
  std::vector<u8> bitstream;  ///< real mode: spliced, bit-identical to solo
  int committed_frames = 0;
  u64 final_epoch = 0;  ///< dispatches + fences the session lived through
};

struct WorkerManagerOptions {
  HeartbeatOptions heartbeat;
  double heartbeat_deadline_ms = 1.0;
  double rpc_deadline_ms = 2.0;
  /// Extra submit attempts after the first (each with a fresh epoch/lease).
  int rpc_retries = 2;
  double tick_sleep_ms = 0.2;
  /// Ticks an outstanding lease may age before it is fenced and reassigned
  /// even though its node still heartbeats (executor wedged, not crashed).
  int lease_ticks = 2000;
  int capability_poll_ticks = 64;
  /// Consecutive ticks with zero dispatchable nodes (and work pending)
  /// before sessions fail with kNoLiveWorker instead of waiting forever.
  int all_dead_grace_ticks = 500;
  ResilienceOptions backoff;  ///< only the backoff_* fields are used
  /// Consecutive failed shard attempts (worker-side throws) before a
  /// session gives up with kRestartsExhausted; <= 0 picks a default of
  /// 3 + number of registered workers.
  int max_shard_failures = 0;
  obs::TraceSession* trace = nullptr;  ///< cluster-lane marks when set
};

/// Per-node counters for the bench's per-node report (satellite view of
/// the manager-wide NodeTelemetry).
struct NodeCounters {
  std::string name;
  int dispatches = 0;
  int completions = 0;
  int fenced_replies = 0;
  int reassigned_away = 0;  ///< leases fenced off this node
  int steals = 0;           ///< reassigned quanta this node picked up
  int heartbeat_misses = 0;
};

class WorkerManager {
 public:
  explicit WorkerManager(WorkerManagerOptions opts = {});
  ~WorkerManager();

  WorkerManager(const WorkerManager&) = delete;
  WorkerManager& operator=(const WorkerManager&) = delete;

  /// Registers a node and polls its capabilities (with retries). Returns
  /// the NodeId the manager will use for it. Call before the first submit.
  NodeId register_worker(std::unique_ptr<WorkerProxy> worker);

  int num_workers() const;

  /// Enqueues a session; the driver dispatches it on its next tick.
  int submit(ClusterSessionConfig cfg);

  /// Blocks until the session reaches a terminal state.
  ClusterSessionResult wait(int id);

  /// Waits for every submitted session.
  std::vector<ClusterSessionResult> drain();

  obs::NodeTelemetry telemetry() const;
  std::vector<NodeCounters> node_counters() const;
  NodeLiveness node_state(int node) const;
  int node_incarnation(int node) const;

 private:
  struct Node {
    std::unique_ptr<WorkerProxy> worker;
    WorkerCapabilities caps;
    int outstanding = 0;
    double ewma_fpms = 0.0;  ///< measured frames/ms, EWMA over commits
    NodeCounters counters;
  };

  struct SessionState {
    int id = -1;
    ClusterSessionConfig cfg;
    u64 epoch = 0;
    int committed = 0;
    bool outstanding = false;
    u64 lease_id = 0;
    int lease_node = -1;
    u64 lease_tick = 0;
    bool reassigned = false;  ///< next dispatch on a new node is a steal
    int last_node = -1;
    int consecutive_failures = 0;
    SessionCheckpoint checkpoint;
    ClusterSessionResult result;
    bool done = false;
  };

  void run_driver();
  void tick();
  void beat_nodes();
  void drain_inbox();
  void expire_leases();
  void dispatch_pending();
  /// Invalidates the session's outstanding lease (epoch stays burned; the
  /// next dispatch bumps past it) and marks it for reassignment.
  void fence_session_locked(SessionState* s, const char* why);
  void fence_node_locked(int node);
  void finish_locked(SessionState* s, TerminalReason reason,
                     std::string error);
  std::vector<double> node_capabilities_locked() const;
  void mark(int session, const char* label);

  WorkerManagerOptions opts_;

  // The completion inbox has its own mutex and must outlive the workers
  // (declared before them): worker threads call the sink during teardown.
  mutable std::mutex inbox_mu_;
  std::vector<ShardResult> inbox_;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  std::vector<Node> nodes_;
  std::unique_ptr<HeartbeatMonitor> monitor_;  ///< grows with registration
  std::vector<std::unique_ptr<SessionState>> sessions_;
  obs::NodeTelemetry tel_;
  u64 next_lease_ = 0;
  u64 tick_count_ = 0;
  int all_dead_ticks_ = 0;

  std::atomic<bool> running_{true};
  std::thread driver_;
};

}  // namespace feves::cluster
