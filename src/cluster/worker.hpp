// WorkerProxy: the transport-agnostic surface of one execute node in the
// one-schedule-machine / N-execute-machines design (SNIPPETS.md §1). The
// schedule machine (WorkerManager) talks to every node exclusively through
// this interface: deadline-bounded heartbeats, capability polls and shard
// submissions, with completions pushed back through a sink. The in-process
// LoopbackWorker is the first implementation; a socket transport slots in
// behind the same five calls and inherits the whole robustness layer —
// liveness detection, bounded waiting, lease fencing — for free.
//
// Work moves in *leases*: each dispatched quantum (a contiguous frame range
// of one session) carries a (lease_id, epoch) stamp. The manager bumps the
// session's epoch on every dispatch and fences the old epoch whenever a
// lease expires or its node dies, so a zombie node's late reply — however
// delayed by hangs or healed partitions — can never commit twice.
#pragma once

#include "cluster/rpc.hpp"
#include "core/collaborative_encoder.hpp"
#include "core/framework.hpp"
#include "service/resilience.hpp"
#include "video/sequence.hpp"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace feves::cluster {

/// What a node exports upstream when the manager polls it: enough for the
/// inter-node tier of the two-tier balance (sched/node_balance.hpp).
struct WorkerCapabilities {
  std::string name;
  int num_devices = 0;
  double capability_score = 0.0;  ///< topology_capability() of the node
};

/// One work quantum: encode frames [frame_begin, frame_end) of a session,
/// resuming from `resume` when valid (bit-identical continuation). The
/// worker never sees the whole session — only the quantum its lease covers.
struct WorkShard {
  u64 lease_id = 0;  ///< globally unique per dispatch
  u64 epoch = 0;     ///< session epoch at dispatch; stale epochs are fenced
  int session = -1;
  int frame_begin = 0;  ///< stream-global; 0 includes the bootstrap I frame
  int frame_end = 0;    ///< exclusive
  int total_frames = 0;

  EncoderConfig cfg;
  FrameworkOptions fw;  ///< fw.trace must stay null (worker-private loop)
  PerturbationSchedule perturbations;
  FaultSchedule device_faults;  ///< device-level faults inside this node
  std::shared_ptr<VideoSource> source;  ///< real mode when non-null
  SimdTier tier = SimdTier::kAuto;
  SessionCheckpoint resume;  ///< valid when frame_begin > 0
};

/// Pushed to the manager's completion sink when a shard finishes (or dies
/// worker-side). Carries its lease stamp so the manager can fence it.
struct ShardResult {
  u64 lease_id = 0;
  u64 epoch = 0;
  int session = -1;
  int node = -1;
  bool ok = false;
  std::string error;
  int frame_begin = 0;
  int frames_done = 0;  ///< frames encoded by this quantum
  bool source_exhausted = false;  ///< real mode: the source ended early
  double encode_ms = 0.0;         ///< wall time the quantum took node-side
  std::vector<FrameStats> frames;
  std::vector<u8> bitstream;     ///< real mode: this quantum's bytes only
  SessionCheckpoint checkpoint;  ///< boundary at frame_begin + frames_done
};

using CompletionSink = std::function<void(ShardResult)>;

using NodeId = int;

/// The RPC surface of one execute node. Every call is bounded by
/// `deadline_ms` and reports transport-level trouble as an RpcStatus — the
/// manager wraps each call in jittered-backoff retries (service/resilience
/// Backoff) and feeds heartbeat outcomes to the HeartbeatMonitor.
class WorkerProxy {
 public:
  virtual ~WorkerProxy() = default;

  virtual NodeId id() const = 0;

  /// Liveness probe. kOk = the node answered within the deadline.
  virtual RpcStatus heartbeat(double deadline_ms) = 0;

  /// Capability poll (resource-manager role): fills `out` on kOk.
  virtual RpcStatus capabilities(double deadline_ms,
                                 WorkerCapabilities* out) = 0;

  /// Asynchronous dispatch: kOk acknowledges that the shard is queued; the
  /// result arrives later through the completion sink. A kDeadlineExceeded
  /// ack is *uncertain* — the node may or may not have the shard — so the
  /// manager must bump the epoch before re-dispatching anywhere.
  virtual RpcStatus submit(const WorkShard& shard, double deadline_ms) = 0;

  /// Best-effort cancel of a fenced lease: drops it from the queue and
  /// aborts it between frames if running. Purely an optimization — a
  /// completion that slips through is fenced by epoch at the manager.
  virtual RpcStatus cancel(u64 lease_id, double deadline_ms) = 0;

  /// Where completed shards are pushed. Set once at registration, before
  /// any submit. Delivery may come from a worker-owned thread.
  virtual void set_completion_sink(CompletionSink sink) = 0;
};

}  // namespace feves::cluster
