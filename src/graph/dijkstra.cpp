#include "graph/dijkstra.hpp"

#include <algorithm>
#include <queue>

namespace feves::graph {

std::vector<int> ShortestPaths::path_to(int target) const {
  FEVES_CHECK(target >= 0 && target < static_cast<int>(distance.size()));
  if (distance[target] == kUnreachable) return {};
  std::vector<int> path;
  for (int node = target; node != -1; node = predecessor[node]) {
    path.push_back(node);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPaths dijkstra(const Graph& g, int source) {
  FEVES_CHECK(source >= 0 && source < g.num_nodes());
  ShortestPaths out;
  out.distance.assign(g.num_nodes(), kUnreachable);
  out.predecessor.assign(g.num_nodes(), -1);
  out.distance[source] = 0.0;

  using Item = std::pair<double, int>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    const auto [dist, node] = heap.top();
    heap.pop();
    if (dist > out.distance[node]) continue;  // stale entry
    for (const Edge& e : g.edges_from(node)) {
      const double cand = dist + e.weight;
      if (cand < out.distance[e.to]) {
        out.distance[e.to] = cand;
        out.predecessor[e.to] = node;
        heap.emplace(cand, e.to);
      }
    }
  }
  return out;
}

}  // namespace feves::graph
