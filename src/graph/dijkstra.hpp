// Dijkstra shortest path over a small directed weighted graph. The FEVES
// scheduler uses it to select the device that hosts the R* modules
// (MC+TQ+TQ^-1+DBL): nodes model "frame data resident on device d" states,
// edges carry transfer-in + compute + transfer-out costs, and the cheapest
// source→sink path names the winning device (paper Sec. III-B, citing [9]).
#pragma once

#include "common/check.hpp"

#include <limits>
#include <vector>

namespace feves::graph {

struct Edge {
  int to;
  double weight;
};

class Graph {
 public:
  explicit Graph(int num_nodes) : adj_(num_nodes) {}

  int num_nodes() const { return static_cast<int>(adj_.size()); }

  void add_edge(int from, int to, double weight) {
    FEVES_CHECK(from >= 0 && from < num_nodes());
    FEVES_CHECK(to >= 0 && to < num_nodes());
    FEVES_CHECK(weight >= 0.0);
    adj_[from].push_back({to, weight});
  }

  const std::vector<Edge>& edges_from(int node) const { return adj_[node]; }

 private:
  std::vector<std::vector<Edge>> adj_;
};

struct ShortestPaths {
  std::vector<double> distance;  ///< +inf when unreachable
  std::vector<int> predecessor;  ///< -1 for source / unreachable

  /// Reconstructs the node sequence source→target (empty if unreachable).
  std::vector<int> path_to(int target) const;
};

/// Single-source Dijkstra; non-negative weights required (checked on insert).
ShortestPaths dijkstra(const Graph& g, int source);

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

}  // namespace feves::graph
