// Extension bench: multi-session aggregate throughput on the big shared
// pool. One session cannot saturate PoolBig (CPU + 23 accelerators): the
// per-accelerator whole-frame RF broadcast, the serial R* block and the
// tau1/tau2 syncs flatten single-stream scaling long before 24 devices.
// The encode service recovers the lost capacity by packing concurrent
// sessions onto fair-share slices. This sweep runs 1/2/4/8 sessions under
// the adaptive LP and the equidistant baseline and reports aggregate fps,
// per-session queue wait and grant utilization.
//
// Shape checks (exit status = number of failures, for tools/check.sh):
//   * 4 adaptive sessions reach >= 2.5x one session's aggregate fps
//     (the service acceptance criterion),
//   * aggregate throughput never drops from 1 -> 4 sessions,
//   * grant utilization stays a valid fraction.
#include "bench/bench_util.hpp"
#include "service/encode_service.hpp"

#include <cstdio>

namespace feves {
namespace {

struct SweepPoint {
  double aggregate_fps = 0.0;
  double sum_session_fps = 0.0;
  double wait_ms_per_frame = 0.0;
  double utilization = 0.0;
};

SweepPoint run_sweep(const PlatformTopology& topo, int nsessions, int frames,
                     SchedulingPolicy policy) {
  EncodeService svc(topo);
  for (int s = 0; s < nsessions; ++s) {
    SessionConfig sc;
    sc.cfg = bench::paper_config(/*sa_size=*/32, /*num_refs=*/1);
    sc.fw.policy = policy;
    sc.fw.lb.probe_rows = 2;
    sc.frames = frames;
    svc.submit(sc);
  }
  for (const SessionResult& r : svc.drain()) {
    if (r.state != SessionResult::State::kCompleted) {
      std::printf("!! session %d did not complete: %s\n", r.id,
                  r.error.c_str());
    }
  }
  const ServiceStats st = svc.stats();
  SweepPoint p;
  p.aggregate_fps = st.aggregate_fps;
  p.sum_session_fps = st.sum_session_fps;
  p.wait_ms_per_frame =
      st.total_frames > 0 ? st.total_queue_wait_ms / st.total_frames : 0.0;
  p.utilization = st.mean_grant_utilization;
  return p;
}

}  // namespace
}  // namespace feves

int main() {
  using namespace feves;
  bench::print_header(
      "EXT: multi-session aggregate throughput (EncodeService, PoolBig)",
      "1080p SA=32 1 ref, 16 frames/session, CPU_H + 23x GPU_K shared pool");

  const PlatformTopology topo = make_pool_big();
  const int kFrames = 16;
  const SchedulingPolicy policies[] = {SchedulingPolicy::kAdaptiveLp,
                                       SchedulingPolicy::kEquidistant};
  const char* policy_names[] = {"adaptive", "equidistant"};

  SweepPoint adaptive[4];
  std::printf("%-12s %9s %12s %12s %10s %6s\n", "policy", "sessions",
              "agg fps", "sum fps", "wait/frame", "util");
  for (int pi = 0; pi < 2; ++pi) {
    const int counts[] = {1, 2, 4, 8};
    for (int ci = 0; ci < 4; ++ci) {
      const SweepPoint p =
          run_sweep(topo, counts[ci], kFrames, policies[pi]);
      if (pi == 0) adaptive[ci] = p;
      std::printf("%-12s %9d %12.2f %12.2f %8.1fms %6.2f\n",
                  policy_names[pi], counts[ci], p.aggregate_fps,
                  p.sum_session_fps, p.wait_ms_per_frame, p.utilization);
    }
  }

  int fails = 0;
  const double ratio4 = adaptive[2].aggregate_fps / adaptive[0].aggregate_fps;
  std::printf("\n4-session / 1-session aggregate: %.2fx (need >= 2.5x)  %s\n",
              ratio4, ratio4 >= 2.5 ? "PASS" : "FAIL");
  fails += ratio4 >= 2.5 ? 0 : 1;

  const bool monotone =
      adaptive[1].aggregate_fps >= adaptive[0].aggregate_fps * 0.98 &&
      adaptive[2].aggregate_fps >= adaptive[1].aggregate_fps * 0.98;
  std::printf("aggregate non-decreasing 1->2->4 sessions:  %s\n",
              monotone ? "PASS" : "FAIL");
  fails += monotone ? 0 : 1;

  bool util_ok = true;
  for (const SweepPoint& p : adaptive) {
    util_ok = util_ok && p.utilization > 0.0 && p.utilization <= 1.0 + 1e-9;
  }
  std::printf("grant utilization in (0, 1]:                %s\n",
              util_ok ? "PASS" : "FAIL");
  fails += util_ok ? 0 : 1;

  return fails;
}
