// Extension bench: multi-session aggregate throughput on the big shared
// pool. One session cannot saturate PoolBig (CPU + 23 accelerators): the
// per-accelerator whole-frame RF broadcast, the serial R* block and the
// tau1/tau2 syncs flatten single-stream scaling long before 24 devices.
// The encode service recovers the lost capacity by packing concurrent
// sessions onto fair-share slices. This sweep runs 1/2/4/8 sessions under
// the adaptive LP and the equidistant baseline and reports aggregate fps,
// per-session queue wait and grant utilization.
//
// Shape checks (exit status = number of failures, for tools/check.sh):
//   * 4 adaptive sessions reach >= 2.5x one session's aggregate fps
//     (the service acceptance criterion),
//   * aggregate throughput never drops from 1 -> 4 sessions,
//   * grant utilization stays a valid fraction.
//
// `--workers N` adds the cluster axis: the same multi-session workload is
// pushed through a WorkerManager fleet of N loopback nodes (each with its
// own private pool and LP), sweeping the fleet size and reporting per-node
// dispatch/steal/reassignment counters — the two-tier balance made visible.
#include "bench/bench_util.hpp"
#include "cluster/loopback_worker.hpp"
#include "cluster/worker_manager.hpp"
#include "service/encode_service.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>

namespace feves {
namespace {

struct SweepPoint {
  double aggregate_fps = 0.0;
  double sum_session_fps = 0.0;
  double wait_ms_per_frame = 0.0;
  double utilization = 0.0;
};

SweepPoint run_sweep(const PlatformTopology& topo, int nsessions, int frames,
                     SchedulingPolicy policy) {
  EncodeService svc(topo);
  for (int s = 0; s < nsessions; ++s) {
    SessionConfig sc;
    sc.cfg = bench::paper_config(/*sa_size=*/32, /*num_refs=*/1);
    sc.fw.policy = policy;
    sc.fw.lb.probe_rows = 2;
    sc.frames = frames;
    svc.submit(sc);
  }
  for (const SessionResult& r : svc.drain()) {
    if (r.state != SessionResult::State::kCompleted) {
      std::printf("!! session %d did not complete: %s\n", r.id,
                  r.error.c_str());
    }
  }
  const ServiceStats st = svc.stats();
  SweepPoint p;
  p.aggregate_fps = st.aggregate_fps;
  p.sum_session_fps = st.sum_session_fps;
  p.wait_ms_per_frame =
      st.total_frames > 0 ? st.total_queue_wait_ms / st.total_frames : 0.0;
  p.utilization = st.mean_grant_utilization;
  return p;
}

struct ClusterPoint {
  double aggregate_fps = 0.0;
  int completed = 0;
  int sessions = 0;
  std::vector<cluster::NodeCounters> nodes;
  obs::NodeTelemetry tel;
};

ClusterPoint run_cluster(int workers, int nsessions, int frames) {
  cluster::WorkerManagerOptions mo;
  mo.tick_sleep_ms = 0.2;
  cluster::WorkerManager mgr(mo);
  for (int n = 0; n < workers; ++n) {
    mgr.register_worker(std::make_unique<cluster::LoopbackWorker>(
        n, "node" + std::to_string(n), make_sys_nf(), NodeFaultSchedule{}));
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < nsessions; ++s) {
    cluster::ClusterSessionConfig sc;
    sc.cfg = bench::paper_config(/*sa_size=*/32, /*num_refs=*/1);
    sc.fw.policy = SchedulingPolicy::kAdaptiveLp;
    sc.fw.lb.probe_rows = 2;
    sc.frames = frames;
    sc.chunk_frames = 2;
    mgr.submit(sc);
  }
  ClusterPoint p;
  p.sessions = nsessions;
  for (const cluster::ClusterSessionResult& r : mgr.drain()) {
    if (r.reason == TerminalReason::kCompleted) {
      ++p.completed;
    } else {
      std::printf("!! cluster session %d: %s (%s)\n", r.id,
                  to_string(r.reason), r.error.c_str());
    }
  }
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  p.aggregate_fps =
      wall_s > 0 ? static_cast<double>(p.completed * frames) / wall_s : 0.0;
  p.nodes = mgr.node_counters();
  p.tel = mgr.telemetry();
  return p;
}

}  // namespace
}  // namespace feves

int main(int argc, char** argv) {
  using namespace feves;
  // Custom CLI: same --smoke/--json contract as the other benches, plus the
  // cluster axis (bench_util's shared parser rejects unknown flags).
  bool smoke = false;
  std::string json_path;
  int workers = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json <path>] [--workers <n>]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::print_header(
      "EXT: multi-session aggregate throughput (EncodeService, PoolBig)",
      "1080p SA=32 1 ref, 16 frames/session, CPU_H + 23x GPU_K shared pool");

  const PlatformTopology topo = make_pool_big();
  const int kFrames = smoke ? 4 : 16;
  bench::JsonReport report;
  const SchedulingPolicy policies[] = {SchedulingPolicy::kAdaptiveLp,
                                       SchedulingPolicy::kEquidistant};
  const char* policy_names[] = {"adaptive", "equidistant"};

  SweepPoint adaptive[4];
  std::printf("%-12s %9s %12s %12s %10s %6s\n", "policy", "sessions",
              "agg fps", "sum fps", "wait/frame", "util");
  for (int pi = 0; pi < 2; ++pi) {
    const int counts[] = {1, 2, 4, 8};
    for (int ci = 0; ci < 4; ++ci) {
      const SweepPoint p =
          run_sweep(topo, counts[ci], kFrames, policies[pi]);
      if (pi == 0) adaptive[ci] = p;
      std::printf("%-12s %9d %12.2f %12.2f %8.1fms %6.2f\n",
                  policy_names[pi], counts[ci], p.aggregate_fps,
                  p.sum_session_fps, p.wait_ms_per_frame, p.utilization);
      const std::string key = std::string(policy_names[pi]) + "_" +
                              std::to_string(counts[ci]);
      report.add(key + "_agg_fps", p.aggregate_fps);
      report.add(key + "_wait_ms_per_frame", p.wait_ms_per_frame);
      report.add(key + "_utilization", p.utilization);
    }
  }

  // Throughput thresholds gate only the full-size run: at --smoke frame
  // counts the wall-clock ratios are dominated by startup jitter, so they
  // print but do not fail (CI runs --smoke purely for the cluster checks
  // and the JSON artifact).
  const int shape_fail = smoke ? 0 : 1;
  int fails = 0;
  const double ratio4 = adaptive[2].aggregate_fps / adaptive[0].aggregate_fps;
  std::printf("\n4-session / 1-session aggregate: %.2fx (need >= 2.5x)  %s\n",
              ratio4, ratio4 >= 2.5 ? "PASS" : "FAIL");
  fails += ratio4 >= 2.5 ? 0 : shape_fail;

  const bool monotone =
      adaptive[1].aggregate_fps >= adaptive[0].aggregate_fps * 0.98 &&
      adaptive[2].aggregate_fps >= adaptive[1].aggregate_fps * 0.98;
  std::printf("aggregate non-decreasing 1->2->4 sessions:  %s\n",
              monotone ? "PASS" : "FAIL");
  fails += monotone ? 0 : shape_fail;

  bool util_ok = true;
  for (const SweepPoint& p : adaptive) {
    util_ok = util_ok && p.utilization > 0.0 && p.utilization <= 1.0 + 1e-9;
  }
  std::printf("grant utilization in (0, 1]:                %s\n",
              util_ok ? "PASS" : "FAIL");
  fails += util_ok ? 0 : 1;

  if (workers > 0) {
    // Cluster axis: fixed workload, growing fleet. Per-node counters show
    // where the inter-node balancer actually put the quanta (and, under
    // faults, how much work moved — here, fault-free, steals should be 0).
    const int csessions = smoke ? 4 : 8;
    const int cframes = smoke ? 4 : 12;
    std::printf("\ncluster axis: %d sessions x %d frames, SYS_NF per node\n",
                csessions, cframes);
    std::printf("%-8s %9s %10s\n", "workers", "agg fps", "completed");
    ClusterPoint last;
    for (int w = 1; w <= workers; w *= 2) {
      const ClusterPoint p = run_cluster(w, csessions, cframes);
      std::printf("%-8d %9.2f %6d/%d\n", w, p.aggregate_fps, p.completed,
                  p.sessions);
      report.add("workers_" + std::to_string(w) + "_agg_fps",
                 p.aggregate_fps);
      fails += p.completed == p.sessions ? 0 : 1;
      last = p;
      if (w == workers) break;
      if (w * 2 > workers) w = workers / 2;  // make the top of the axis N
    }

    std::printf("\nper-node counters (fleet of %d):\n", workers);
    std::printf("%-8s %10s %12s %8s %12s %8s %10s\n", "node", "dispatch",
                "completions", "steals", "reassigned", "fenced", "hb-miss");
    for (std::size_t n = 0; n < last.nodes.size(); ++n) {
      const cluster::NodeCounters& nc = last.nodes[n];
      std::printf("%-8s %10d %12d %8d %12d %8d %10d\n", nc.name.c_str(),
                  nc.dispatches, nc.completions, nc.steals,
                  nc.reassigned_away, nc.fenced_replies,
                  nc.heartbeat_misses);
      const std::string key = "node" + std::to_string(n);
      report.add(key + "_dispatches", nc.dispatches);
      report.add(key + "_completions", nc.completions);
      report.add(key + "_steals", nc.steals);
      report.add(key + "_reassigned_away", nc.reassigned_away);
      report.add(key + "_fenced_replies", nc.fenced_replies);
    }
    const bool counters_ok =
        last.tel.completions <= last.tel.dispatches &&
        last.tel.steals <= last.tel.reassigns;
    std::printf("per-node counter consistency:               %s\n",
                counters_ok ? "PASS" : "FAIL");
    fails += counters_ok ? 0 : 1;
  }

  if (!json_path.empty() && !report.write(json_path)) fails += 1;
  return fails;
}
