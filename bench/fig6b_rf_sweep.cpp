// Reproduces Fig 6(b): encoding performance (fps) for 1080p sequences over
// the number of reference frames (1..8) at the 32x32 search area, for every
// evaluated configuration. The paper reports real-time encoding on SysHK up
// to 4 RFs, SysHK ~1.3x GPU_K and ~3x CPU_H on average, and SysNFF up to
// 2.2x GPU_F / 5x CPU_N.
#include "bench/bench_util.hpp"

int main() {
  using namespace feves;
  using namespace feves::bench;

  print_header(
      "Fig 6(b) — fps vs number of reference frames (1080p, 32x32 SA)",
      "paper: SysHK stays real-time to 4 RFs; avg speedups: SysHK 1.3x\n"
      "GPU_K / 3x CPU_H; SysNFF up to 2.2x GPU_F / 5x CPU_N");

  constexpr int kMaxRefs = 8;
  std::printf("%-8s", "config");
  for (int r = 1; r <= kMaxRefs; ++r) std::printf("  %4dRF ", r);
  std::printf("\n");

  std::vector<std::vector<double>> fps(all_config_names().size());
  for (std::size_t c = 0; c < all_config_names().size(); ++c) {
    const auto& name = all_config_names()[c];
    std::printf("%-8s", name.c_str());
    for (int r = 1; r <= kMaxRefs; ++r) {
      fps[c].push_back(config_fps(name, 32, r));
      std::printf("  %5.1f%c ", fps[c].back(), fps[c].back() >= 25 ? '*' : ' ');
    }
    std::printf("\n");
  }

  auto row = [&](const char* name) -> const std::vector<double>& {
    for (std::size_t c = 0; c < all_config_names().size(); ++c) {
      if (all_config_names()[c] == name) return fps[c];
    }
    throw Error("unknown config");
  };

  auto avg_ratio = [&](const char* a, const char* b) {
    double acc = 0;
    for (int r = 0; r < kMaxRefs; ++r) acc += row(a)[r] / row(b)[r];
    return acc / kMaxRefs;
  };

  int hk_realtime_refs = 0;
  for (int r = 0; r < kMaxRefs; ++r) {
    if (row("SysHK")[r] >= 25.0) hk_realtime_refs = r + 1;
  }

  std::printf("\nShape checks vs paper:\n");
  std::printf("  - SysHK real-time up to %d RFs (paper: 4)\n",
              hk_realtime_refs);
  std::printf("  - avg SysHK / GPU_K  = %.2fx (paper: ~1.3)\n",
              avg_ratio("SysHK", "GPU_K"));
  std::printf("  - avg SysHK / CPU_H  = %.2fx (paper: ~3)\n",
              avg_ratio("SysHK", "CPU_H"));
  double best_nff_f = 0, best_nff_n = 0;
  for (int r = 0; r < kMaxRefs; ++r) {
    best_nff_f = std::max(best_nff_f, row("SysNFF")[r] / row("GPU_F")[r]);
    best_nff_n = std::max(best_nff_n, row("SysNFF")[r] / row("CPU_N")[r]);
  }
  std::printf("  - max SysNFF / GPU_F = %.2fx (paper: up to 2.2)\n", best_nff_f);
  std::printf("  - max SysNFF / CPU_N = %.2fx (paper: up to 5)\n", best_nff_n);
  return 0;
}
