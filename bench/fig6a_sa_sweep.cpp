// Reproduces Fig 6(a): encoding performance (fps) for 1080p sequences over
// four search-area sizes (32x32 .. 256x256 pixels) with 1 reference frame,
// for the four single devices and three CPU+GPU systems the paper
// evaluates. The shaded region of the paper's chart is the >= 25 fps
// real-time band — flagged with '*' here.
#include "bench/bench_util.hpp"

int main() {
  using namespace feves;
  using namespace feves::bench;

  print_header(
      "Fig 6(a) — fps vs search-area size (1080p, 1 RF)",
      "paper: fps drops ~4x per SA step; GPUs and all CPU+GPU systems\n"
      "reach real-time (>=25 fps, marked *) at 32x32; SysHK also at 64x64");

  const int sa_sizes[] = {32, 64, 128, 256};
  std::printf("%-8s", "config");
  for (int sa : sa_sizes) std::printf("  %5dx%-5d", sa, sa);
  std::printf("\n");

  for (const auto& name : all_config_names()) {
    std::printf("%-8s", name.c_str());
    for (int sa : sa_sizes) {
      const double fps = config_fps(name, sa, 1);
      std::printf("  %8.1f%c  ", fps, fps >= 25.0 ? '*' : ' ');
    }
    std::printf("\n");
  }

  std::printf(
      "\nShape checks vs paper:\n"
      "  - real-time at 32x32 for GPU_F, GPU_K, SysNF, SysNFF, SysHK: %s\n",
      (config_fps("GPU_F", 32, 1) >= 25 && config_fps("GPU_K", 32, 1) >= 25 &&
       config_fps("SysNF", 32, 1) >= 25 && config_fps("SysNFF", 32, 1) >= 25 &&
       config_fps("SysHK", 32, 1) >= 25)
          ? "PASS"
          : "FAIL");
  std::printf("  - real-time at 64x64 only for SysHK among systems: %s\n",
              (config_fps("SysHK", 64, 1) >= 25) ? "PASS" : "FAIL");
  std::printf("  - CPU_H ~1.7x CPU_N: %.2fx\n",
              config_fps("CPU_H", 32, 1) / config_fps("CPU_N", 32, 1));
  std::printf("  - GPU_K ~2x GPU_F:   %.2fx\n",
              config_fps("GPU_K", 32, 1) / config_fps("GPU_F", 32, 1));
  return 0;
}
