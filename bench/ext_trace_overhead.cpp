// Tracing cost contract (DESIGN.md Sec. 6d): with no TraceSession attached
// the executors pay one pointer test per op; with a session attached but
// disabled, one relaxed atomic load and a branch; enabled, one bounded copy
// into a per-lane SPSC ring. This bench measures the contract two ways:
//
//  1. end-to-end on the REAL collaborative encoder (actual kernels, actual
//     copies — the workload the overhead claim is about): enabled must stay
//     under 2% of encode wall time, disabled under the noise floor;
//  2. on the virtual framework, where the DES is so fast that the absolute
//     per-event emission cost itself becomes measurable — reported in ns
//     per event, not gated as a percentage of a microsecond-scale loop.
#include "bench/bench_util.hpp"

#include "common/timer.hpp"
#include "core/collaborative_encoder.hpp"
#include "obs/trace.hpp"
#include "video/sequence.hpp"

#include <algorithm>
#include <cstddef>

namespace {

using namespace feves;
using namespace feves::bench;

enum class Mode { kNoSession, kDisabled, kEnabled };

// Workload sizes; shrunk by --smoke (same code paths, CI-friendly runtime).
int g_real_frames = 9;
int g_virtual_frames = 40;
int g_real_reps = 5;
int g_virtual_reps = 9;

FrameworkOptions mode_options(Mode mode, obs::TraceSession* session) {
  FrameworkOptions opts;
  session->tracer.set_enabled(mode == Mode::kEnabled);
  if (mode != Mode::kNoSession) opts.trace = session;
  return opts;
}

// Real mode: every pixel genuinely encoded on host threads. One encode of
// `frames` CIF frames is tens of milliseconds of actual kernel work.
double real_encode_ms(Mode mode, std::size_t* events) {
  EncoderConfig cfg;
  cfg.width = 352;
  cfg.height = 288;
  cfg.search_range = 8;
  cfg.num_ref_frames = 2;

  SyntheticConfig scene;
  scene.width = cfg.width;
  scene.height = cfg.height;
  scene.frames = g_real_frames;
  scene.kind = SceneKind::kRollingObjects;
  SyntheticSequence source(scene);

  obs::TraceSession session;
  CollaborativeEncoder enc(cfg, topology_by_name("SysNFF"),
                           mode_options(mode, &session));
  Frame420 frame(cfg.width, cfg.height);
  Timer t;
  for (int f = 0; f < scene.frames; ++f) {
    source.read_frame(f, frame);
    enc.encode_frame(frame, nullptr);
  }
  const double ms = t.elapsed_ms();
  if (events != nullptr) *events = session.sink.size();
  return ms;
}

// Virtual mode: the DES settles ~30 ops in microseconds, so this measures
// the raw emission cost, not a realistic overhead ratio.
double virtual_encode_ms(Mode mode, std::size_t* events) {
  obs::TraceSession session;
  VirtualFramework fw(paper_config(32, 2), topology_by_name("SysNFF"),
                      mode_options(mode, &session));
  Timer t;
  fw.encode(g_virtual_frames);
  const double ms = t.elapsed_ms();
  if (events != nullptr) *events = session.sink.size();
  return ms;
}

template <typename F>
double best_of(int reps, F&& run, Mode mode, std::size_t* events = nullptr) {
  double best = run(mode, events);
  for (int r = 1; r < reps; ++r) best = std::min(best, run(mode, events));
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  if (args.smoke) {
    g_real_frames = 5;
    g_virtual_frames = 12;
    g_real_reps = 2;
    g_virtual_reps = 3;
  }
  print_header("Tracing overhead (real-mode encode wall time)",
               "contract: enabled < 2%, disabled ~ 0% (SysNFF, CIF)");

  real_encode_ms(Mode::kNoSession, nullptr);  // warm-up

  const double base = best_of(g_real_reps, real_encode_ms, Mode::kNoSession);
  const double off = best_of(g_real_reps, real_encode_ms, Mode::kDisabled);
  std::size_t events = 0;
  const double on =
      best_of(g_real_reps, real_encode_ms, Mode::kEnabled, &events);
  const double off_pct = 100.0 * (off - base) / base;
  const double on_pct = 100.0 * (on - base) / base;

  std::printf("%-22s  %-10s  %-9s\n", "mode", "wall [ms]", "overhead");
  std::printf("%-22s  %-10.2f  %-9s\n", "no session", base, "--");
  std::printf("%-22s  %-10.2f  %+8.2f%%\n", "session, disabled", off, off_pct);
  std::printf("%-22s  %-10.2f  %+8.2f%%  (%zu events)\n", "session, enabled",
              on, on_pct, events);

  const bool off_ok = off_pct < 1.0;  // noise floor for "~0%"
  const bool on_ok = on_pct < 2.0;
  std::printf("\nShape check: disabled ~0%% (< 1%%): %s, enabled < 2%%: %s\n",
              off_ok ? "PASS" : "FAIL", on_ok ? "PASS" : "FAIL");

  print_header("Raw emission cost (virtual framework, DES in microseconds)",
               "absolute cost per traced event; the DES loop is too fast "
               "for a % contract");
  const double vbase =
      best_of(g_virtual_reps, virtual_encode_ms, Mode::kNoSession);
  std::size_t vevents = 0;
  const double von =
      best_of(g_virtual_reps, virtual_encode_ms, Mode::kEnabled, &vevents);
  const double ns_per_event =
      vevents > 0 ? 1e6 * (von - vbase) / static_cast<double>(vevents) : 0.0;
  std::printf("%d virtual frames: %.2f ms untraced, %.2f ms traced, "
              "%zu events => %.0f ns/event\n",
              g_virtual_frames, vbase, von, vevents, ns_per_event);

  if (!args.json_path.empty()) {
    JsonReport report;
    report.add("bench", "ext_trace_overhead");
    report.add("real_frames", g_real_frames);
    report.add("real_base_ms", base);
    report.add("real_disabled_ms", off);
    report.add("real_enabled_ms", on);
    report.add("real_disabled_overhead_pct", off_pct);
    report.add("real_enabled_overhead_pct", on_pct);
    report.add("virtual_frames", g_virtual_frames);
    report.add("virtual_ns_per_event", ns_per_event);
    if (!report.write(args.json_path)) return 1;
  }
  return 0;
}
