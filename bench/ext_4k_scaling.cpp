// Extension beyond the paper: how does the FEVES scheduling approach scale
// to 4K (2160p) content, and how much does the R* placement (GPU-centric
// vs CPU-centric, Sec. III-B) matter as frame data grows? The paper's
// future-work direction — "growing demands for higher video resolutions" —
// projected with the same calibrated platform models.
#include "bench/bench_util.hpp"

namespace {

feves::EncoderConfig uhd_config(int sa_size, int refs) {
  feves::EncoderConfig cfg;
  cfg.width = 3840;
  cfg.height = 2176;  // 136 MB rows (2160p coded size)
  cfg.search_range = sa_size / 2;
  cfg.num_ref_frames = refs;
  return cfg;
}

double fps_4k(const std::string& name, int sa, int refs, int force_rstar) {
  feves::FrameworkOptions opts;
  opts.force_rstar_device = force_rstar;
  feves::VirtualFramework fw(uhd_config(sa, refs),
                             feves::topology_by_name(name), opts);
  return fw.steady_state_fps(20 + 2 * refs, 6 + refs);
}

}  // namespace

int main() {
  using namespace feves;
  using namespace feves::bench;

  print_header("Extension — 4K (3840x2176) scaling on the paper's platforms",
               "4x the pixels of 1080p: compute scales ~4x, PCIe traffic"
               " ~4x;\nthe balance between them decides whether co-scheduling"
               " still pays");

  std::printf("%-8s  %-12s  %-12s  %-14s\n", "config", "1080p fps",
              "4K fps", "1080p/4K ratio");
  for (const auto& name : all_config_names()) {
    const double hd = config_fps(name, 32, 1);
    const double uhd = fps_4k(name, 32, 1, -1);
    std::printf("%-8s  %-12.1f  %-12.1f  %-14.2f\n", name.c_str(), hd, uhd,
                hd / uhd);
  }

  print_header("Extension — R* placement at 4K (32x32 SA, 2 RF)",
               "GPU-centric avoids the RF round trip but pays the MC"
               " prefetch;\nCPU-centric keeps R* at the host. The Dijkstra"
               " selector should track\nthe better of the two");
  std::printf("%-8s  %-14s  %-14s  %-12s\n", "system", "GPU-centric",
              "CPU-centric", "auto");
  for (const char* sys : {"SysNF", "SysNFF", "SysHK"}) {
    const double gpu_centric = fps_4k(sys, 32, 2, 1);
    const double cpu_centric = fps_4k(sys, 32, 2, 0);
    const double automatic = fps_4k(sys, 32, 2, -1);
    std::printf("%-8s  %-14.2f  %-14.2f  %-12.2f\n", sys, gpu_centric,
                cpu_centric, automatic);
    if (automatic + 0.05 < std::max(gpu_centric, cpu_centric)) {
      std::printf("          (auto selector under-performing the best"
                  " placement)\n");
    }
  }

  std::printf(
      "\nReading: at 4K none of the 2014-class platforms is real-time (the\n"
      "paper's real-time frontier was full HD); the heterogeneous speedup\n"
      "survives, so the framework remains worthwhile as devices scale.\n");
  return 0;
}
