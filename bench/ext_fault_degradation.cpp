// Extension bench (beyond the paper's figures): graceful degradation under
// device faults, at two levels.
//
// Part 1 — framework level: the paper's Fig 7 perturbations only slow a
// device down; here devices FAIL — a permanent loss of one GPU and, later,
// a transient loss of the other — and the framework must quarantine the
// offender, re-solve the LP over the survivors within the same frame, and
// re-admit a device that comes back. The quality bar: steady-state
// throughput after a permanent loss must come within 10% of a from-scratch
// run on the reduced topology (probe frames included, amortized by the
// quarantine backoff).
//
// Part 2 — service level: the same storm hits a multi-session EncodeService
// and the resilience ladder (grant re-request → checkpoint-restart →
// degradation) plus overload shedding must keep the service live. The
// fault/restart/shed counters land in the --json artifact so CI can watch
// them over time.
#include "bench/bench_util.hpp"

#include "platform/fault.hpp"
#include "service/encode_service.hpp"

#include <map>

namespace {

using namespace feves;
using namespace feves::bench;

/// Part 1: the original framework-level loss/recovery storm. Returns the
/// numbers the JSON artifact tracks.
void run_framework_part(JsonReport& report) {
  print_header(
      "EXT — fault injection & graceful degradation, SysNFF, 32x32 SA, 1 RF",
      "GPU#2 (device 2) lost for good at frame 30; GPU#1 (device 1) drops\n"
      "out for frames 90..100 and returns. Expect: re-balance within the\n"
      "faulted frame, degraded steady state within 10% of SysNF, and full\n"
      "re-admission of the recovered device");

  constexpr int kFrames = 140;
  FaultSchedule faults;
  faults.add({/*device=*/2, /*begin=*/30, kFaultForever,
              FaultKind::kDeviceLoss});
  faults.add({/*device=*/1, /*begin=*/90, /*end=*/100,
              FaultKind::kDeviceLoss});

  VirtualFramework fw(paper_config(32, 1), make_sys_nff(), {}, {}, faults);
  std::vector<FrameStats> stats;
  for (int f = 1; f <= kFrames; ++f) stats.push_back(fw.encode_frame());

  std::printf("%-6s %9s %5s %5s %5s %5s  %s\n", "frame", "ms", "retry",
              "quar", "readm", "ndev", "rows me[0]/me[1]/me[2]");
  for (int f = 0; f < kFrames; ++f) {
    const auto& s = stats[f];
    const bool interesting = s.retries > 0 || s.devices_readmitted > 0 ||
                             f < 3 || (f % 10) == 9;
    if (!interesting) continue;
    std::printf("%-6d %9.2f %5d %5d %5d %5d  %d/%d/%d\n", s.frame_number,
                s.total_ms, s.retries, s.devices_quarantined,
                s.devices_readmitted, s.active_devices, s.dist.me[0],
                s.dist.me[1], s.dist.me[2]);
  }

  auto avg_ms = [&](int lo, int hi) {
    double t = 0.0;
    for (int f = lo; f < hi; ++f) t += stats[f].total_ms;
    return t / (hi - lo);
  };

  std::printf("\nShape checks:\n");
  // (1) The faulted frame re-balances in place: retries recorded, lost
  // device stripped of rows, and the next frame is already clean.
  const auto& hit = stats[29];  // frame 30
  std::printf("  - loss absorbed at frame 30 (retries %d, me[2] %d rows,"
              " frame 31 retries %d): %s\n",
              hit.retries, hit.dist.me[2], stats[30].retries,
              (hit.retries >= 1 && hit.dist.me[2] == 0 &&
               stats[30].retries == 0)
                  ? "PASS"
                  : "FAIL");
  // (2) Degraded steady state vs a from-scratch SysNF run.
  VirtualFramework reduced(paper_config(32, 1), make_sys_nf());
  const double reduced_fps = reduced.steady_state_fps(30, 8);
  const double degraded_fps = 1000.0 / avg_ms(60, 85);
  std::printf("  - degraded fps %.2f vs SysNF-from-scratch %.2f (within 10%%):"
              " %s\n",
              degraded_fps, reduced_fps,
              (degraded_fps > 0.90 * reduced_fps &&
               degraded_fps < 1.10 * reduced_fps)
                  ? "PASS"
                  : "FAIL");
  // (3) The transiently lost GPU#1 is re-admitted and carries load again.
  const auto& tail = stats[kFrames - 1];
  int readmissions = 0;
  for (const auto& s : stats) readmissions += s.devices_readmitted;
  std::printf("  - GPU#1 re-admitted (readmissions %d, tail me[1] %d rows,"
              " %d active devices): %s\n",
              readmissions, tail.dist.me[1], tail.active_devices,
              (readmissions >= 1 && tail.dist.me[1] > 0 &&
               tail.active_devices == 2)
                  ? "PASS"
                  : "FAIL");
  // (4) Recovery restores the two-device (CPU + GPU#1) throughput level of
  // the pre-transient window.
  const double before = avg_ms(75, 85);
  const double after = avg_ms(125, 140);
  std::printf("  - post-recovery %.2f ms vs pre-transient %.2f ms (within"
              " 10%%): %s\n",
              after, before,
              std::abs(after - before) < 0.10 * before ? "PASS" : "FAIL");

  report.add("fw_degraded_fps", degraded_fps);
  report.add("fw_reduced_topo_fps", reduced_fps);
  report.add("fw_readmissions", static_cast<double>(readmissions));
  report.add("fw_pre_transient_ms", before);
  report.add("fw_post_recovery_ms", after);
}

/// Part 2: the service-level storm — fault-ridden sessions climbing the
/// resilience ladder while an overload burst exercises the admission queue
/// and priority shedding.
void run_service_part(JsonReport& report, bool smoke) {
  print_header(
      "EXT — service-level resilience: restarts, degradation, shedding",
      "Fault-storm sessions over a 2-slot service with a bounded admission\n"
      "queue: transient faults retry in place, a permanent device loss\n"
      "drives checkpoint-restarts into the degradation ladder, and an\n"
      "overload burst sheds the lightest queued session");

  const int kFrames = smoke ? 6 : 24;
  EncoderConfig cfg;
  cfg.width = 640;
  cfg.height = 384;
  cfg.search_range = 8;
  cfg.num_ref_frames = 1;

  ServiceOptions sopts;
  sopts.arbiter.max_sessions = 2;
  sopts.arbiter.admission_queue = 2;
  sopts.breaker.open_ms = 1.0;
  EncodeService svc(make_sys_nff(), sopts);

  auto session = [&](double weight) {
    SessionConfig sc;
    sc.cfg = cfg;
    sc.frames = kFrames;
    sc.weight = weight;
    sc.resilience.max_restarts = 3;
    sc.resilience.checkpoint_interval = 2;
    sc.resilience.backoff_initial_ms = 0.2;
    sc.resilience.backoff_max_ms = 2.0;
    return sc;
  };

  int submitted = 0;
  // Clean baselines plus fault-storm victims.
  { submitted += svc.submit(session(1.0)) >= 0; }
  {
    SessionConfig sc = session(1.0);
    sc.faults.add({/*device=*/1, /*begin=*/2, /*end=*/4,
                   FaultKind::kKernelTransient});
    submitted += svc.submit(std::move(sc)) >= 0;
  }
  {
    // Permanent loss of one device mid-stream: grant re-request strips it;
    // the session finishes on the survivors.
    SessionConfig sc = session(1.5);
    sc.faults.add({/*device=*/2, /*begin=*/3, kFaultForever,
                   FaultKind::kDeviceLoss});
    submitted += svc.submit(std::move(sc)) >= 0;
  }
  {
    // Total pool loss at frame 4: no survivor to rebalance onto, so the
    // exception escapes the framework and the session climbs the service
    // ladder — checkpoint-restart with backoff until restarts exhaust.
    // Deterministic frame-keyed faults replay identically, so this lands
    // in an attributed restarts-exhausted terminal state with replayed
    // frames — the restart/backoff counters the JSON artifact tracks.
    // Weight 3.0: heavy enough that the overload burst below never picks
    // it as the shedding victim while it waits in the queue.
    SessionConfig sc = session(3.0);
    for (int d = 0; d < make_sys_nff().num_devices(); ++d) {
      sc.faults.add({d, /*begin=*/4, kFaultForever, FaultKind::kDeviceLoss});
    }
    sc.resilience.max_restarts = 2;
    submitted += svc.submit(std::move(sc)) >= 0;
  }
  // Overload burst into the admission queue, ascending weights so the
  // heaviest newcomers shed the lightest queued sessions.
  for (int i = 0; i < 4; ++i) {
    submitted += svc.submit(session(0.5 + 0.5 * i)) >= 0;
  }

  const auto results = svc.drain();
  const auto stats = svc.stats();

  std::map<std::string, int> by_reason;
  long frames_done = 0;
  for (const auto& r : results) {
    ++by_reason[to_string(r.reason)];
    frames_done += static_cast<long>(r.frames.size());
  }

  std::printf("%-22s %s\n", "submissions", "");
  std::printf("  %-20s %d\n", "offered", submitted + stats.rejected);
  std::printf("  %-20s %d\n", "admitted", stats.admitted);
  std::printf("  %-20s %d\n", "rejected", stats.rejected);
  std::printf("  %-20s %d\n", "shed", stats.shed);
  std::printf("%-22s\n", "terminal states");
  for (const auto& [reason, n] : by_reason) {
    std::printf("  %-20s %d\n", reason.c_str(), n);
  }
  const auto& rt = stats.resilience;
  std::printf("%-22s\n", "recovery counters");
  std::printf("  %-20s %d\n", "restarts", rt.restarts);
  std::printf("  %-20s %d\n", "frames_replayed", rt.frames_replayed);
  std::printf("  %-20s %d\n", "checkpoints_taken", rt.checkpoints_taken);
  std::printf("  %-20s %d\n", "checkpoints_restored", rt.checkpoints_restored);
  std::printf("  %-20s %d\n", "backoff_waits", rt.backoff_waits);
  std::printf("  %-20s %d\n", "breaker_trips", rt.breaker_trips);
  std::printf("  %-20s %d\n", "degraded_sessions", rt.degraded_sessions);
  std::printf("  %-20s %ld frames over %d sessions\n", "throughput",
              frames_done, static_cast<int>(results.size()));

  // Shape check: the service stayed live — every admitted session reached
  // an attributed terminal state and the pool has no leaked devices.
  const bool clean_pool =
      svc.arbiter().free_devices() == svc.arbiter().num_devices();
  std::printf("\nShape checks:\n");
  std::printf("  - all %d admitted sessions reached terminal states,"
              " pool whole: %s\n",
              stats.admitted,
              (static_cast<int>(results.size()) == stats.admitted &&
               clean_pool)
                  ? "PASS"
                  : "FAIL");

  report.add("svc_admitted", static_cast<double>(stats.admitted));
  report.add("svc_rejected", static_cast<double>(stats.rejected));
  report.add("svc_shed", static_cast<double>(stats.shed));
  report.add("svc_frames", static_cast<double>(frames_done));
  report.add("svc_restarts", static_cast<double>(rt.restarts));
  report.add("svc_frames_replayed", static_cast<double>(rt.frames_replayed));
  report.add("svc_checkpoints_taken",
             static_cast<double>(rt.checkpoints_taken));
  report.add("svc_checkpoints_restored",
             static_cast<double>(rt.checkpoints_restored));
  report.add("svc_backoff_waits", static_cast<double>(rt.backoff_waits));
  report.add("svc_backoff_wait_ms", rt.backoff_wait_ms);
  report.add("svc_breaker_trips", static_cast<double>(rt.breaker_trips));
  report.add("svc_degraded_sessions",
             static_cast<double>(rt.degraded_sessions));
  for (const auto& [reason, n] : by_reason) {
    report.add("svc_reason_" + reason, static_cast<double>(n));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  JsonReport report;
  run_framework_part(report);
  run_service_part(report, args.smoke);
  if (!args.json_path.empty() && !report.write(args.json_path)) return 1;
  return 0;
}
