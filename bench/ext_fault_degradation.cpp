// Extension bench (beyond the paper's figures): graceful degradation under
// device faults. The paper's Fig 7 perturbations only slow a device down;
// here devices FAIL — a permanent loss of one GPU and, later, a transient
// loss of the other — and the framework must quarantine the offender,
// re-solve the LP over the survivors within the same frame, and re-admit a
// device that comes back. The quality bar: steady-state throughput after a
// permanent loss must come within 10% of a from-scratch run on the reduced
// topology (probe frames included, amortized by the quarantine backoff).
#include "bench/bench_util.hpp"

#include "platform/fault.hpp"

int main() {
  using namespace feves;
  using namespace feves::bench;

  print_header(
      "EXT — fault injection & graceful degradation, SysNFF, 32x32 SA, 1 RF",
      "GPU#2 (device 2) lost for good at frame 30; GPU#1 (device 1) drops\n"
      "out for frames 90..100 and returns. Expect: re-balance within the\n"
      "faulted frame, degraded steady state within 10% of SysNF, and full\n"
      "re-admission of the recovered device");

  constexpr int kFrames = 140;
  FaultSchedule faults;
  faults.add({/*device=*/2, /*begin=*/30, kFaultForever,
              FaultKind::kDeviceLoss});
  faults.add({/*device=*/1, /*begin=*/90, /*end=*/100,
              FaultKind::kDeviceLoss});

  VirtualFramework fw(paper_config(32, 1), make_sys_nff(), {}, {}, faults);
  std::vector<FrameStats> stats;
  for (int f = 1; f <= kFrames; ++f) stats.push_back(fw.encode_frame());

  std::printf("%-6s %9s %5s %5s %5s %5s  %s\n", "frame", "ms", "retry",
              "quar", "readm", "ndev", "rows me[0]/me[1]/me[2]");
  for (int f = 0; f < kFrames; ++f) {
    const auto& s = stats[f];
    const bool interesting = s.retries > 0 || s.devices_readmitted > 0 ||
                             f < 3 || (f % 10) == 9;
    if (!interesting) continue;
    std::printf("%-6d %9.2f %5d %5d %5d %5d  %d/%d/%d\n", s.frame_number,
                s.total_ms, s.retries, s.devices_quarantined,
                s.devices_readmitted, s.active_devices, s.dist.me[0],
                s.dist.me[1], s.dist.me[2]);
  }

  auto avg_ms = [&](int lo, int hi) {
    double t = 0.0;
    for (int f = lo; f < hi; ++f) t += stats[f].total_ms;
    return t / (hi - lo);
  };

  std::printf("\nShape checks:\n");
  // (1) The faulted frame re-balances in place: retries recorded, lost
  // device stripped of rows, and the next frame is already clean.
  const auto& hit = stats[29];  // frame 30
  std::printf("  - loss absorbed at frame 30 (retries %d, me[2] %d rows,"
              " frame 31 retries %d): %s\n",
              hit.retries, hit.dist.me[2], stats[30].retries,
              (hit.retries >= 1 && hit.dist.me[2] == 0 &&
               stats[30].retries == 0)
                  ? "PASS"
                  : "FAIL");
  // (2) Degraded steady state vs a from-scratch SysNF run.
  VirtualFramework reduced(paper_config(32, 1), make_sys_nf());
  const double reduced_fps = reduced.steady_state_fps(30, 8);
  const double degraded_fps = 1000.0 / avg_ms(60, 85);
  std::printf("  - degraded fps %.2f vs SysNF-from-scratch %.2f (within 10%%):"
              " %s\n",
              degraded_fps, reduced_fps,
              (degraded_fps > 0.90 * reduced_fps &&
               degraded_fps < 1.10 * reduced_fps)
                  ? "PASS"
                  : "FAIL");
  // (3) The transiently lost GPU#1 is re-admitted and carries load again.
  const auto& tail = stats[kFrames - 1];
  int readmissions = 0;
  for (const auto& s : stats) readmissions += s.devices_readmitted;
  std::printf("  - GPU#1 re-admitted (readmissions %d, tail me[1] %d rows,"
              " %d active devices): %s\n",
              readmissions, tail.dist.me[1], tail.active_devices,
              (readmissions >= 1 && tail.dist.me[1] > 0 &&
               tail.active_devices == 2)
                  ? "PASS"
                  : "FAIL");
  // (4) Recovery restores the two-device (CPU + GPU#1) throughput level of
  // the pre-transient window.
  const double before = avg_ms(75, 85);
  const double after = avg_ms(125, 140);
  std::printf("  - post-recovery %.2f ms vs pre-transient %.2f ms (within"
              " 10%%): %s\n",
              after, before,
              std::abs(after - before) < 0.10 * before ? "PASS" : "FAIL");
  return 0;
}
