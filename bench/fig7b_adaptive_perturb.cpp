// Reproduces Fig 7(b): per-frame encoding time for the first 100
// inter-frames on SysHK with a 32x32 search area and 1..5 reference frames,
// including the paper's observed "sudden change in the system performance
// ... (e.g. other processes started running)" at frames 76 and 81 for 1 RF
// and frames 31, 71 and 92 for 2 RFs. In the paper these events were
// uncontrolled; here a deterministic PerturbationSchedule injects a 2x GPU
// slowdown lasting three frames starting at those points. The framework's
// dynamic re-characterization must (a) absorb the hit by re-balancing while
// the interference is still active and (b) snap back to the baseline within
// a single inter-frame after it ends — the self-adaptability property the
// paper highlights ("a very fast recovery of the performance curves, which
// required a single inter-frame to converge").
//
// The 3-5 RF curves also show the reference-window ramp-up: the encode
// time rises over the first R frames while the RF set fills, then goes
// near-constant.
#include "bench/bench_util.hpp"

int main() {
  using namespace feves;
  using namespace feves::bench;

  print_header(
      "Fig 7(b) — per-frame encode time, SysHK, 32x32 SA, 1..5 RFs,"
      " with injected perturbations",
      "paper: real-time up to 4 RFs; rising slopes over frames 2..R while\n"
      "the RF window fills; spikes at frames 76/81 (1RF) and 31/71/92 (2RF)\n"
      "recover within a single inter-frame");

  constexpr int kFrames = 100;
  std::vector<std::vector<double>> trace;
  for (int refs = 1; refs <= 5; ++refs) {
    PerturbationSchedule sched;
    if (refs == 1) {
      sched.add({/*device=*/1, 76, 79, 2.0});
      sched.add({1, 81, 84, 2.0});
    } else if (refs == 2) {
      sched.add({1, 31, 34, 2.0});
      sched.add({1, 71, 74, 2.0});
      sched.add({1, 92, 95, 2.0});
    }
    VirtualFramework fw(paper_config(32, refs), make_sys_hk(), {}, sched);
    std::vector<double> ms;
    for (int f = 1; f <= kFrames; ++f) ms.push_back(fw.encode_frame().total_ms);
    trace.push_back(std::move(ms));
  }

  std::printf("%-6s", "frame");
  for (int r = 1; r <= 5; ++r) std::printf("  %4dRF[ms]", r);
  std::printf("\n");
  for (int f = 0; f < kFrames; ++f) {
    std::printf("%-6d", f + 1);
    for (int r = 0; r < 5; ++r) std::printf("  %9.2f ", trace[r][f]);
    std::printf("\n");
  }

  auto at = [&](int refs, int frame) { return trace[refs - 1][frame - 1]; };

  std::printf("\nShape checks vs paper:\n");
  // Spike, in-perturbation mitigation, and single-frame post-event recovery
  // (1 RF event at frames 76-78; 2 RF event at frames 31-33).
  const double base1 = at(1, 70);
  std::printf("  - 1RF spike at 76 (%.1f -> %.1f ms), rebalanced by 78"
              " (%.1f), baseline by 80 (%.1f): %s\n",
              base1, at(1, 76), at(1, 78), at(1, 80),
              (at(1, 76) > 1.3 * base1 && at(1, 78) < 0.9 * at(1, 76) &&
               at(1, 80) < 1.1 * base1)
                  ? "PASS"
                  : "FAIL");
  const double base2 = at(2, 28);
  std::printf("  - 2RF spike at 31 (%.1f -> %.1f ms), rebalanced by 33"
              " (%.1f), baseline by 35 (%.1f): %s\n",
              base2, at(2, 31), at(2, 33), at(2, 35),
              (at(2, 31) > 1.3 * base2 && at(2, 33) < 0.9 * at(2, 31) &&
               at(2, 35) < 1.1 * base2)
                  ? "PASS"
                  : "FAIL");
  // Ramp-up for 5 RFs: rising over frames 2..5, then near-constant.
  std::printf("  - 5RF ramp-up (f2 %.1f < f3 %.1f < f5 %.1f): %s\n", at(5, 2),
              at(5, 3), at(5, 5),
              (at(5, 2) < at(5, 3) && at(5, 3) < at(5, 5)) ? "PASS" : "FAIL");
  std::printf("  - 5RF flat after fill (f20 vs f90 within 5%%): %s\n",
              std::abs(at(5, 20) - at(5, 90)) < 0.05 * at(5, 20) ? "PASS"
                                                                 : "FAIL");
  // Real-time reach: paper achieves it for up to 4 RFs on SysHK.
  int rt_refs = 0;
  for (int r = 1; r <= 5; ++r) {
    if (at(r, 60) <= 40.0) rt_refs = r;
  }
  std::printf("  - real-time sustained up to %d RFs (paper: 4)\n", rt_refs);
  return 0;
}
