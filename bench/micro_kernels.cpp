// Kernel microbenchmarks (google-benchmark): throughput of the Parallel
// Modules library primitives. Not a figure from the paper — these sanity-
// check that the analytical cost model's *shape* (ME dominated by SA area,
// SME by refinement probes, INT by output pixels) matches the real kernels.
#include "codec/cavlc.hpp"
#include "codec/deblock.hpp"
#include "codec/frame_codec.hpp"
#include "codec/interpolate.hpp"
#include "codec/me.hpp"
#include "codec/sad.hpp"
#include "codec/sme.hpp"
#include "codec/transform.hpp"
#include "common/rng.hpp"

#include <benchmark/benchmark.h>

namespace feves {
namespace {

PlaneU8 random_plane(int w, int h, int border, u64 seed) {
  PlaneU8 p(w, h, border);
  Rng rng(seed);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      p.at(y, x) = static_cast<u8>(rng.uniform_int(0, 255));
    }
  }
  p.extend_borders();
  return p;
}

void BM_SadGrid(benchmark::State& state) {
  const auto tier = static_cast<SimdTier>(state.range(0));
  auto cur = random_plane(64, 64, 8, 1);
  auto ref = random_plane(64, 64, 8, 2);
  const SadGrid16Fn fn = sad_grid_16x16_kernel(tier);
  u16 grid[16];
  for (auto _ : state) {
    fn(cur.row(8), cur.stride(), ref.row(9) + 1, ref.stride(), grid);
    benchmark::DoNotOptimize(grid);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SadGrid)
    ->Arg(static_cast<int>(SimdTier::kScalar))
    ->Arg(static_cast<int>(SimdTier::kBlocked))
    ->Arg(static_cast<int>(SimdTier::kSimd));

void BM_MeMbRow(benchmark::State& state) {
  const int range = static_cast<int>(state.range(0));
  const int w = 160, h = 32;
  auto cur = random_plane(w, h, range + 24, 3);
  auto ref = random_plane(w, h, range + 24, 4);
  MotionField field(static_cast<std::size_t>((w / 16) * (h / 16)));
  MeParams params;
  params.search_range = range;
  for (auto _ : state) {
    run_me_rows(cur, ref, w / 16, 0, 1, params, field.data());
    benchmark::DoNotOptimize(field.data());
  }
  // Candidate-pixel comparisons per row, the cost model's ME unit.
  state.SetItemsProcessed(state.iterations() * (w / 16) * (2 * range) *
                          (2 * range) * 256);
}
BENCHMARK(BM_MeMbRow)->Arg(8)->Arg(16);

void BM_InterpolateMbRow(benchmark::State& state) {
  const int w = 320, h = 32;
  auto ref = random_plane(w, h, 24, 5);
  SubPelFrame sf(w, h, 24);
  for (auto _ : state) {
    run_interpolation_rows(ref, 0, 1, sf);
    benchmark::DoNotOptimize(sf.phases[5].row(0));
  }
  state.SetItemsProcessed(state.iterations() * w * 16 * 16);
}
BENCHMARK(BM_InterpolateMbRow);

void BM_SmeMbRow(benchmark::State& state) {
  const int w = 160, h = 32;
  auto ref = random_plane(w, h, 24, 6);
  SubPelFrame sf(w, h, 24);
  run_interpolation_rows(ref, 0, h / 16, sf);
  extend_subpel_borders(sf);
  auto cur = random_plane(w, h, 24, 7);
  MotionField field(static_cast<std::size_t>((w / 16) * (h / 16)));
  SmeParams params;
  for (auto _ : state) {
    run_sme_rows(cur, sf, w / 16, 0, 1, params, field.data());
    benchmark::DoNotOptimize(field.data());
  }
  state.SetItemsProcessed(state.iterations() * (w / 16) * 25 * 7 * 256);
}
BENCHMARK(BM_SmeMbRow);

void BM_TransformQuantRoundTrip(benchmark::State& state) {
  Rng rng(8);
  i16 res[16];
  for (auto& v : res) v = static_cast<i16>(rng.uniform_int(-255, 255));
  for (auto _ : state) {
    i16 coeffs[16], levels[16], rec[16];
    i32 deq[16];
    forward_transform_4x4(res, coeffs);
    quantize_4x4(coeffs, 28, false, levels);
    dequantize_4x4(levels, 28, deq);
    inverse_transform_4x4(deq, rec);
    benchmark::DoNotOptimize(rec);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_TransformQuantRoundTrip);

void BM_DeblockFrame(benchmark::State& state) {
  const int mbw = 20, mbh = 2;
  auto luma = random_plane(mbw * 16, mbh * 16, 8, 9);
  std::vector<Block4x4Info> blocks(static_cast<std::size_t>(mbw * 4 * mbh * 4));
  Rng rng(10);
  for (auto& b : blocks) {
    b.nonzero = rng.uniform01() < 0.4;
    b.mv = Mv{static_cast<i16>(rng.uniform_int(-16, 16)),
              static_cast<i16>(rng.uniform_int(-16, 16))};
  }
  DeblockParams params;
  params.qp = 28;
  for (auto _ : state) {
    run_deblock_frame(luma, mbw, mbh, blocks.data(), params);
    benchmark::DoNotOptimize(luma.row(0));
  }
  state.SetItemsProcessed(state.iterations() * mbw * 16 * mbh * 16);
}
BENCHMARK(BM_DeblockFrame);

void BM_CavlcBlock(benchmark::State& state) {
  Rng rng(11);
  i16 levels[16] = {};
  for (int c = 0; c < 5; ++c) {
    levels[rng.uniform_int(0, 15)] = static_cast<i16>(rng.uniform_int(-9, 9));
  }
  for (auto _ : state) {
    BitWriter bw;
    cavlc_encode_4x4(bw, levels);
    benchmark::DoNotOptimize(bw.bytes().data());
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_CavlcBlock);

}  // namespace
}  // namespace feves

BENCHMARK_MAIN();
