// Per-kernel roofline microbenches of the Parallel Modules library: every
// vectorized kernel family (SAD grid/block, FSBM row, interpolation,
// transform, deblocking, MC) timed at every tier the registry can resolve
// on this machine, with the roofline coordinates that make the numbers
// interpretable — bytes and arithmetic ops per item, so items/s converts to
// GB/s and Gop/s against the machine's ceilings. Not a figure from the
// paper: these verify that the SIMD tiers actually pay (speedup_vs_scalar
// in the JSON) and that the analytical cost model's shape (ME dominated by
// SA area, INT by output pixels) matches the real kernels.
//
// CLI: --smoke (CI-friendly durations), --json <path> (flat JSON artifact;
// keys like "interp_avx2_mitems_s", "sad_grid_avx2_speedup").
#include "bench/bench_util.hpp"
#include "codec/deblock.hpp"
#include "codec/interpolate.hpp"
#include "codec/mc.hpp"
#include "codec/me.hpp"
#include "codec/sad.hpp"
#include "codec/transform.hpp"
#include "common/cpu_features.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

#include <cstdio>
#include <string>
#include <vector>

namespace feves {
namespace {

/// Compiler barrier: keeps result buffers live without a store of their own.
inline void keep(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

PlaneU8 random_plane(int w, int h, int border, u64 seed) {
  PlaneU8 p(w, h, border);
  Rng rng(seed);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      p.at(y, x) = static_cast<u8>(rng.uniform_int(0, 255));
    }
  }
  p.extend_borders();
  return p;
}

/// Times `fn` until the measured span is long enough to trust, returning
/// ns per call. Reps auto-scale, so one target serves ns-scale transform
/// calls and ms-scale full-search rows alike.
template <typename F>
double measure_ns(F&& fn, bool smoke) {
  const double target_ms = smoke ? 12.0 : 120.0;
  fn();  // warm caches and the dispatch path
  long reps = 1;
  for (;;) {
    Timer t;
    for (long i = 0; i < reps; ++i) fn();
    const double ms = t.elapsed_ms();
    if (ms >= target_ms || reps >= (1L << 30)) return ms * 1e6 / reps;
    const double scale = ms <= 0.01 ? 16.0 : target_ms * 1.2 / ms;
    reps = static_cast<long>(reps * scale) + 1;
  }
}

/// One kernel family's report: prints a row per tier and emits the JSON
/// keys, folding in the roofline coordinates and the speedup vs scalar.
class KernelReport {
 public:
  KernelReport(bench::JsonReport& json, KernelId id, double items_per_call,
               double bytes_per_item, double ops_per_item)
      : json_(json), id_(id), items_(items_per_call) {
    const std::string k = kernel_name(id);
    json_.add(k + "_bytes_per_item", bytes_per_item);
    json_.add(k + "_ops_per_item", ops_per_item);
    json_.add(k + "_auto_tier", tier_name(max_tier(id)));
  }

  void add(SimdTier tier, double ns_per_call) {
    const double mitems_s = items_ / (ns_per_call * 1e-9) / 1e6;
    if (tier == SimdTier::kScalar) scalar_ns_ = ns_per_call;
    const double speedup =
        scalar_ns_ > 0.0 ? scalar_ns_ / ns_per_call : 0.0;
    std::printf("  %-10s %-8s %12.1f ns/call %10.1f Mitems/s %7.2fx\n",
                kernel_name(id_), tier_name(tier), ns_per_call, mitems_s,
                speedup);
    const std::string key =
        std::string(kernel_name(id_)) + "_" + tier_name(tier);
    json_.add(key + "_ns", ns_per_call);
    json_.add(key + "_mitems_s", mitems_s);
    json_.add(key + "_speedup", speedup);
  }

 private:
  bench::JsonReport& json_;
  KernelId id_;
  double items_;
  double scalar_ns_ = 0.0;
};

/// Tiers worth a row: those the registry resolves to themselves on this
/// machine (a degraded request would just re-measure a lower tier).
std::vector<SimdTier> tiers_of(KernelId id, bool with_blocked) {
  std::vector<SimdTier> out{SimdTier::kScalar};
  if (with_blocked) out.push_back(SimdTier::kBlocked);
  for (SimdTier t : {SimdTier::kSse2, SimdTier::kAvx2}) {
    if (resolve_tier(id, t) == t) out.push_back(t);
  }
  return out;
}

void bench_sad(bench::JsonReport& json, bool smoke) {
  auto cur = random_plane(64, 64, 8, 1);
  auto ref = random_plane(64, 64, 8, 2);

  // 256 pixel-SADs per grid call: 2 bytes loaded and ~3 integer ops
  // (subtract, abs, accumulate) per item.
  KernelReport grid(json, KernelId::kSadGrid, 256, 2.0, 3.0);
  for (SimdTier t : tiers_of(KernelId::kSadGrid, /*with_blocked=*/true)) {
    const SadGrid16Fn fn = sad_grid_16x16_kernel(t);
    u16 out[16];
    grid.add(t, measure_ns(
                    [&] {
                      fn(cur.row(8), cur.stride(), ref.row(9) + 1,
                         ref.stride(), out);
                      keep(out);
                    },
                    smoke));
  }

  KernelReport block(json, KernelId::kSadBlock, 256, 2.0, 3.0);
  for (SimdTier t : tiers_of(KernelId::kSadBlock, /*with_blocked=*/false)) {
    const SadBlockFn fn = sad_block_kernel(t);
    block.add(t, measure_ns(
                     [&] {
                       volatile u32 s = fn(cur.row(8), cur.stride(),
                                           ref.row(9) + 1, ref.stride(), 16,
                                           16);
                       (void)s;
                     },
                     smoke));
  }
}

void bench_me_row(bench::JsonReport& json, bool smoke) {
  const int w = 160, h = 32;
  const int range = smoke ? 8 : 16;
  auto cur = random_plane(w, h, range + 24, 3);
  auto ref = random_plane(w, h, range + 24, 4);
  MotionField field(static_cast<std::size_t>((w / 16) * (h / 16)));

  // The search is inclusive on both ends: (2R+1)^2 candidates per MB, each
  // touching all 256 macroblock pixels (matches run_me_rows exactly —
  // the old (2R)^2 accounting under-counted items by ~12% at R=8).
  const double cands = double(2 * range + 1) * (2 * range + 1);
  const double items = (w / 16) * cands * 256.0;
  json.add("me_row_bytes_per_item", 2.0);
  json.add("me_row_ops_per_item", 3.0);
  std::printf("  [me_row: %d MBs x (2*%d+1)^2 candidates]\n", w / 16, range);
  MeParams params;
  params.search_range = range;
  for (SimdTier t : tiers_of(KernelId::kSadGrid, /*with_blocked=*/true)) {
    params.tier = t;
    const double ns = measure_ns(
        [&] {
          run_me_rows(cur, ref, w / 16, 0, 1, params, field.data());
          keep(field.data());
        },
        smoke);
    const double mitems_s = items / (ns * 1e-9) / 1e6;
    static double scalar_ns = 0.0;
    if (t == SimdTier::kScalar) scalar_ns = ns;
    std::printf("  %-10s %-8s %12.1f ns/call %10.1f Mitems/s %7.2fx\n",
                "me_row", tier_name(t), ns, mitems_s,
                scalar_ns > 0 ? scalar_ns / ns : 0.0);
    const std::string key = std::string("me_row_") + tier_name(t);
    json.add(key + "_ns", ns);
    json.add(key + "_mitems_s", mitems_s);
    json.add(key + "_speedup", scalar_ns > 0 ? scalar_ns / ns : 0.0);
  }
}

void bench_interp(bench::JsonReport& json, bool smoke) {
  const int w = 320, h = 32;
  auto ref = random_plane(w, h, 24, 5);
  SubPelFrame sf(w, h, 24);

  // Items are produced sub-pel pixels: 16 phase planes x w x 16 per MB row.
  // Per item the row engine writes 1 byte and reads ~1.3 (htap rows are
  // shared across the 16 phases); ~6 adds/shifts amortized per output.
  KernelReport rep(json, KernelId::kInterp, double(w) * 16 * 16, 2.3, 6.0);
  for (SimdTier t : tiers_of(KernelId::kInterp, /*with_blocked=*/true)) {
    rep.add(t, measure_ns(
                   [&] {
                     run_interpolation_rows(ref, 0, 1, sf, t);
                     keep(sf.phases[5].row(0));
                   },
                   smoke));
  }
}

void bench_transform(bench::JsonReport& json, bool smoke) {
  // A batch of blocks so the per-call dispatch cost amortizes like in the
  // encoder's TQ loop. Inverse inputs are realistic dequantized coeffs.
  constexpr int kBlocks = 64;
  Rng rng(6);
  i16 res[kBlocks][16];
  i32 deq[kBlocks][16];
  for (int b = 0; b < kBlocks; ++b) {
    i16 coeffs[16], levels[16];
    for (auto& v : res[b]) v = static_cast<i16>(rng.uniform_int(-255, 255));
    forward_transform_4x4(res[b], coeffs);
    quantize_4x4(coeffs, 28, false, levels);
    dequantize_4x4(levels, 28, deq[b]);
  }

  // 16 samples per 4x4: ~8 add/sub/shift ops each (two butterfly passes),
  // 2 bytes read + 2 written (i16 in/out; inverse reads i32 -> 6 bytes).
  KernelReport fwd(json, KernelId::kTransform, kBlocks * 16.0, 4.0, 8.0);
  std::printf("  [transform: forward / %d-block batches]\n", kBlocks);
  for (SimdTier t : tiers_of(KernelId::kTransform, /*with_blocked=*/false)) {
    const Fwd4x4Fn fn = forward_transform_4x4_kernel(t);
    i16 out[16];
    fwd.add(t, measure_ns(
                   [&] {
                     for (int b = 0; b < kBlocks; ++b) fn(res[b], out);
                     keep(out);
                   },
                   smoke));
  }
  std::printf("  [transform: inverse]\n");
  for (SimdTier t : tiers_of(KernelId::kTransform, /*with_blocked=*/false)) {
    const Inv4x4Fn fn = inverse_transform_4x4_kernel(t);
    i16 out[16];
    static double scalar_ns = 0.0;
    const double ns = measure_ns(
        [&] {
          for (int b = 0; b < kBlocks; ++b) fn(deq[b], out);
          keep(out);
        },
        smoke);
    if (t == SimdTier::kScalar) scalar_ns = ns;
    const double mitems_s = kBlocks * 16.0 / (ns * 1e-9) / 1e6;
    std::printf("  %-10s %-8s %12.1f ns/call %10.1f Mitems/s %7.2fx\n",
                "itransform", tier_name(t), ns, mitems_s,
                scalar_ns > 0 ? scalar_ns / ns : 0.0);
    const std::string key = std::string("itransform_") + tier_name(t);
    json.add(key + "_ns", ns);
    json.add(key + "_mitems_s", mitems_s);
    json.add(key + "_speedup", scalar_ns > 0 ? scalar_ns / ns : 0.0);
  }
}

void bench_deblock(bench::JsonReport& json, bool smoke) {
  const int mbw = 20, mbh = 2;
  const auto pristine = random_plane(mbw * 16, mbh * 16, 8, 9);
  auto luma = pristine;
  std::vector<Block4x4Info> blocks(
      static_cast<std::size_t>(mbw * 4 * mbh * 4));
  Rng rng(10);
  for (auto& b : blocks) {
    b.nonzero = rng.uniform01() < 0.4;
    b.mv = Mv{static_cast<i16>(rng.uniform_int(-16, 16)),
              static_cast<i16>(rng.uniform_int(-16, 16))};
  }
  DeblockParams params;
  params.qp = 28;

  // Items are luma pixels. The timed body re-copies the pristine frame
  // (deblocking mutates in place); the copy is identical for every tier, so
  // speedups are diluted but comparable. ~6 bytes and ~12 ops per pixel
  // across the 4 luma edges (heavily mask-dependent; treat as shape).
  KernelReport rep(json, KernelId::kDeblock, double(mbw) * 16 * mbh * 16, 6.0,
                   12.0);
  for (SimdTier t : tiers_of(KernelId::kDeblock, /*with_blocked=*/false)) {
    params.tier = t;
    rep.add(t, measure_ns(
                   [&] {
                     luma = pristine;
                     run_deblock_frame(luma, mbw, mbh, blocks.data(), params);
                     keep(luma.row(0));
                   },
                   smoke));
  }
}

void bench_mc(bench::JsonReport& json, bool smoke) {
  const int w = 64, h = 64;
  auto ref = random_plane(w, h, 24, 11);
  auto cur = random_plane(w, h, 24, 12);
  SubPelFrame sf(w, h, 24);
  run_interpolation_rows(ref, 0, h / 16, sf);
  extend_subpel_borders(sf);
  std::vector<const SubPelFrame*> sfs{&sf};

  MbModeChoice choice;
  choice.mode = PartitionMode::k16x16;
  choice.blocks[0].mv = Mv{6, -5};  // quarter-pel phase (2,3), off-grid
  choice.blocks[0].ref_idx = 0;

  // 256 prediction+residual pairs per MB: 2 bytes read, 3 written (pred u8
  // + res i16), one subtract each.
  KernelReport rep(json, KernelId::kMc, 256.0, 5.0, 1.0);
  u8 pred[kMbSize * kMbSize];
  i16 res[kMbSize * kMbSize];
  for (SimdTier t : tiers_of(KernelId::kMc, /*with_blocked=*/false)) {
    rep.add(t, measure_ns(
                   [&] {
                     motion_compensate_luma_mb(cur, sfs, choice, 1, 1, pred,
                                               res, t);
                     keep(res);
                   },
                   smoke));
  }
}

}  // namespace
}  // namespace feves

int main(int argc, char** argv) {
  using namespace feves;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::JsonReport json;

  const CpuFeatures& cpu = cpu_features();
  bench::print_header(
      "micro_kernels: per-kernel roofline (items/s by SIMD tier)",
      "bytes/ops per item turn Mitems/s into GB/s and Gop/s; speedup is vs "
      "the scalar oracle of the same kernel");
  std::printf("  cpu: sse2=%d avx2=%d\n", cpu.sse2 ? 1 : 0, cpu.avx2 ? 1 : 0);
  json.add("cpu_sse2", cpu.sse2 ? 1.0 : 0.0);
  json.add("cpu_avx2", cpu.avx2 ? 1.0 : 0.0);

  bench_sad(json, args.smoke);
  bench_me_row(json, args.smoke);
  bench_interp(json, args.smoke);
  bench_transform(json, args.smoke);
  bench_deblock(json, args.smoke);
  bench_mc(json, args.smoke);

  if (!args.json_path.empty() && !json.write(args.json_path)) return 1;
  return 0;
}
