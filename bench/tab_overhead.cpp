// Reproduces the Sec. IV overhead claim: "the scheduling overheads
// (introduced by the proposed framework) take, on average, less than 2 ms
// per inter-frame encoding". The overhead here is genuinely measured wall
// time of the Algorithm 2 LP solve (incl. the ∆ fix-point iterations and
// the simplex), the Dijkstra R* selection and the Data Access Management
// interval planning, at full 1080p problem sizes.
#include "bench/bench_util.hpp"

#include <algorithm>

int main(int argc, char** argv) {
  using namespace feves;
  using namespace feves::bench;
  const BenchArgs args = parse_bench_args(argc, argv);

  print_header("Scheduling overhead per inter-frame (measured wall time)",
               "paper: < 2 ms on average, far below any single module");

  const int frames = args.smoke ? 8 : 30;
  const std::vector<const char*> systems =
      args.smoke ? std::vector<const char*>{"SysNFF"}
                 : std::vector<const char*>{"SysNF", "SysNFF", "SysHK"};

  JsonReport report;
  report.add("bench", "tab_overhead");
  report.add("frames", frames);
  std::printf("%-8s  %-5s  %-12s  %-12s  %-12s\n", "system", "RFs",
              "avg [ms]", "max [ms]", "frame [ms]");
  bool all_ok = true;
  for (const char* sys : systems) {
    for (int refs : {1, 4}) {
      VirtualFramework fw(paper_config(32, refs), topology_by_name(sys));
      const auto stats = fw.encode(frames);
      double total = 0, worst = 0, frame_ms = 0;
      for (const auto& s : stats) {
        total += s.scheduling_ms;
        worst = std::max(worst, s.scheduling_ms);
        frame_ms = s.total_ms;
      }
      const double avg = total / static_cast<double>(stats.size());
      std::printf("%-8s  %-5d  %-12.4f  %-12.4f  %-12.1f\n", sys, refs, avg,
                  worst, frame_ms);
      const std::string key = std::string(sys) + "_rf" + std::to_string(refs);
      report.add(key + "_avg_ms", avg);
      report.add(key + "_max_ms", worst);
      all_ok = all_ok && avg < 2.0;
    }
  }
  std::printf("\nShape check vs paper: average overhead < 2 ms: %s\n",
              all_ok ? "PASS" : "FAIL");
  if (!args.json_path.empty() && !report.write(args.json_path)) return 1;
  return 0;
}
