// Extension bench: per-frame orchestration time on the Fig 7(a) steady
// state (SysHK, 64x64 SA), comparing three scheduler configurations:
//
//   cold  — every frame solves the LP from scratch, no pipelining
//           (the pre-pipeline behaviour of this repository);
//   warm  — LP warm-starting + convergence skip, still on the critical path;
//   full  — warm-starting plus the two-slot frame pipeline (the default):
//           the surviving critical-path cost is a slot-validity check.
//
// The number that matters is the CRITICAL-PATH orchestration time — what
// the encode loop actually waits on. Overlapped speculation time is
// reported separately (it is real work, just hidden behind execution).
// Shape check: full's critical path must undercut cold by >= 2x in steady
// state, and the steady state must report warm/skipped solves.
#include "bench/bench_util.hpp"

#include <algorithm>

namespace {

using namespace feves;
using namespace feves::bench;

struct Variant {
  const char* name;
  FrameworkOptions opts;
};

struct Row {
  double critical_ms = 0;   // avg per steady-state frame
  double overlapped_ms = 0; // avg per steady-state frame
  int warm = 0;
  int skipped = 0;
  int hits = 0;
  int solves = 0;
};

Row run_variant(const FrameworkOptions& opts, int frames, int warmup) {
  VirtualFramework fw(paper_config(64, 1), make_sys_hk(), opts);
  const auto stats = fw.encode(frames);
  Row row;
  int counted = 0;
  for (int f = 0; f < static_cast<int>(stats.size()); ++f) {
    const obs::SchedTelemetry& t = stats[f].telemetry;
    row.warm += t.lp_warm_solves;
    row.skipped += t.lp_skipped;
    row.hits += t.pipeline_hits;
    row.solves += t.lp_solves;
    if (f < warmup) continue;  // adaptation transient, not the steady state
    row.critical_ms += t.sched_critical_ms;
    row.overlapped_ms += t.sched_overlapped_ms;
    ++counted;
  }
  row.critical_ms /= std::max(1, counted);
  row.overlapped_ms /= std::max(1, counted);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  const int frames = args.smoke ? 20 : 100;
  const int warmup = 10;

  print_header(
      "Pipelined orchestration — critical-path scheduling time per frame",
      "Fig 7(a) steady state (SysHK, 64x64 SA, 1 RF); contract: full\n"
      "(warm + pipeline, the default) cuts the critical path >= 2x vs cold");

  Variant variants[3];
  variants[0].name = "cold";
  variants[0].opts.enable_pipeline = false;
  variants[0].opts.lb.enable_warm_start = false;
  variants[1].name = "warm";
  variants[1].opts.enable_pipeline = false;
  variants[2].name = "full";  // defaults: warm start + pipeline

  JsonReport report;
  report.add("bench", "ext_pipeline_overhead");
  report.add("frames", frames);

  Row rows[3];
  std::printf("%-6s  %-14s  %-14s  %-6s  %-8s  %-6s\n", "mode",
              "critical [ms]", "overlap [ms]", "warm", "skipped", "hits");
  for (int v = 0; v < 3; ++v) {
    // Best of 3: the LP wall times are microseconds-scale, so one stray
    // scheduler preemption would otherwise dominate the ratio.
    const int reps = args.smoke ? 1 : 3;
    rows[v] = run_variant(variants[v].opts, frames, warmup);
    for (int r = 1; r < reps; ++r) {
      const Row again = run_variant(variants[v].opts, frames, warmup);
      if (again.critical_ms < rows[v].critical_ms) rows[v] = again;
    }
    std::printf("%-6s  %-14.4f  %-14.4f  %-6d  %-8d  %-6d\n", variants[v].name,
                rows[v].critical_ms, rows[v].overlapped_ms, rows[v].warm,
                rows[v].skipped, rows[v].hits);
    const std::string key = variants[v].name;
    report.add(key + "_critical_ms", rows[v].critical_ms);
    report.add(key + "_overlapped_ms", rows[v].overlapped_ms);
    report.add(key + "_warm_solves", rows[v].warm);
    report.add(key + "_skipped", rows[v].skipped);
    report.add(key + "_pipeline_hits", rows[v].hits);
  }

  const double ratio =
      rows[2].critical_ms > 0 ? rows[0].critical_ms / rows[2].critical_ms
                              : 1e9;
  report.add("cold_over_full_ratio", ratio);
  const bool ratio_ok = ratio >= 2.0;
  const bool counters_ok = rows[2].warm + rows[2].skipped > 0;
  const bool hits_ok = rows[2].hits > 0;
  std::printf("\nShape checks:\n");
  std::printf("  - critical path cold/full = %.1fx (>= 2x): %s\n", ratio,
              ratio_ok ? "PASS" : "FAIL");
  std::printf("  - steady state reports warm/skipped solves: %s\n",
              counters_ok ? "PASS" : "FAIL");
  std::printf("  - pipeline slots consumed: %s\n", hits_ok ? "PASS" : "FAIL");
  if (!args.json_path.empty() && !report.write(args.json_path)) return 1;
  return (ratio_ok && counters_ok && hits_ok) ? 0 : 1;
}
