// Shared helpers for the figure-reproduction benches: the evaluation setup
// of the paper's Sec. IV (1080p, IPPP, QP 27/28, FSBM) and small table
// printers.
#pragma once

#include "core/framework.hpp"
#include "platform/presets.hpp"

#include <cstdio>
#include <string>
#include <vector>

namespace feves::bench {

/// The paper's encoding setup: full-HD frames (coded as 1920x1088), FSBM
/// with the requested search-area edge (paper quotes SA = 2 * range), QP
/// 27/28 per the VCEG common conditions.
inline EncoderConfig paper_config(int sa_size, int num_refs) {
  EncoderConfig cfg;
  cfg.width = 1920;
  cfg.height = 1088;
  cfg.search_range = sa_size / 2;
  cfg.num_ref_frames = num_refs;
  cfg.qp_i = 27;
  cfg.qp_p = 28;
  return cfg;
}

/// Steady-state fps of one named configuration under the given setup.
inline double config_fps(const std::string& name, int sa_size, int num_refs,
                         SchedulingPolicy policy = SchedulingPolicy::kAdaptiveLp,
                         bool sf_deferral = true, bool data_reuse = true) {
  FrameworkOptions opts;
  opts.policy = policy;
  opts.lb.enable_sf_deferral = sf_deferral;
  opts.enable_data_reuse = data_reuse;
  VirtualFramework fw(paper_config(sa_size, num_refs),
                      topology_by_name(name), opts);
  return fw.steady_state_fps(/*frames=*/24 + 2 * num_refs,
                             /*warmup=*/6 + num_refs);
}

inline void print_header(const char* title, const char* note) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("%s\n", note);
  std::printf("================================================================\n");
}

}  // namespace feves::bench
