// Shared helpers for the figure-reproduction benches: the evaluation setup
// of the paper's Sec. IV (1080p, IPPP, QP 27/28, FSBM) and small table
// printers.
#pragma once

#include "core/framework.hpp"
#include "platform/presets.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace feves::bench {

/// Common bench CLI: `--smoke` shrinks the workload to a CI-friendly size
/// (same code paths, fewer frames/reps), `--json <path>` additionally dumps
/// the measured numbers as a flat JSON object (uploaded as a CI artifact —
/// numbers to look at over time, not thresholds to gate on).
struct BenchArgs {
  bool smoke = false;
  std::string json_path;
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json <path>]\n", argv[0]);
      std::exit(2);
    }
  }
  return args;
}

/// Minimal flat JSON emitter for bench artifacts (numbers and strings only;
/// insertion order preserved).
class JsonReport {
 public:
  void add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
  }
  void add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + value + "\"");
  }

  /// Writes `{...}` to `path`; returns false (with a message) on IO error.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{");
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(f, "%s\n  \"%s\": %s", i == 0 ? "" : ",",
                   fields_[i].first.c_str(), fields_[i].second.c_str());
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// The paper's encoding setup: full-HD frames (coded as 1920x1088), FSBM
/// with the requested search-area edge (paper quotes SA = 2 * range), QP
/// 27/28 per the VCEG common conditions.
inline EncoderConfig paper_config(int sa_size, int num_refs) {
  EncoderConfig cfg;
  cfg.width = 1920;
  cfg.height = 1088;
  cfg.search_range = sa_size / 2;
  cfg.num_ref_frames = num_refs;
  cfg.qp_i = 27;
  cfg.qp_p = 28;
  return cfg;
}

/// Steady-state fps of one named configuration under the given setup.
inline double config_fps(const std::string& name, int sa_size, int num_refs,
                         SchedulingPolicy policy = SchedulingPolicy::kAdaptiveLp,
                         bool sf_deferral = true, bool data_reuse = true) {
  FrameworkOptions opts;
  opts.policy = policy;
  opts.lb.enable_sf_deferral = sf_deferral;
  opts.enable_data_reuse = data_reuse;
  VirtualFramework fw(paper_config(sa_size, num_refs),
                      topology_by_name(name), opts);
  return fw.steady_state_fps(/*frames=*/24 + 2 * num_refs,
                             /*warmup=*/6 + num_refs);
}

inline void print_header(const char* title, const char* note) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("%s\n", note);
  std::printf("================================================================\n");
}

}  // namespace feves::bench
