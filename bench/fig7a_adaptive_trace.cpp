// Reproduces Fig 7(a): per-frame encoding time for the first 100
// inter-frames on SysHK with a 64x64 search area and 1 or 2 reference
// frames. Frame 1 is the equidistant initialization of Algorithm 1; the
// adaptive Load Balancing then drops the time to a near-constant plateau
// (the paper reads ~near-constant curves, real-time for 1 RF).
#include "bench/bench_util.hpp"

int main() {
  using namespace feves;
  using namespace feves::bench;

  print_header(
      "Fig 7(a) — per-frame encode time, SysHK, 64x64 SA, first 100 frames",
      "paper: frame 1 slow (equidistant), then near-constant; 1 RF stays\n"
      "under the 40 ms real-time line");

  constexpr int kFrames = 100;
  std::vector<std::vector<double>> trace;
  for (int refs : {1, 2}) {
    VirtualFramework fw(paper_config(64, refs), make_sys_hk());
    std::vector<double> ms;
    for (int f = 0; f < kFrames; ++f) ms.push_back(fw.encode_frame().total_ms);
    trace.push_back(std::move(ms));
  }

  std::printf("%-6s  %-10s  %-10s\n", "frame", "1RF [ms]", "2RF [ms]");
  for (int f = 0; f < kFrames; ++f) {
    std::printf("%-6d  %-10.2f  %-10.2f\n", f + 1, trace[0][f], trace[1][f]);
  }

  auto plateau = [](const std::vector<double>& ms) {
    double acc = 0;
    for (int f = 10; f < kFrames; ++f) acc += ms[f];
    return acc / (kFrames - 10);
  };
  std::printf("\nShape checks vs paper:\n");
  std::printf("  - frame 1 vs plateau (1RF): %.1f ms -> %.1f ms (drop %s)\n",
              trace[0][0], plateau(trace[0]),
              trace[0][0] > plateau(trace[0]) * 1.1 ? "PASS" : "FAIL");
  std::printf("  - 1RF plateau real-time (<40 ms): %s\n",
              plateau(trace[0]) < 40.0 ? "PASS" : "FAIL");
  double spread = 0;
  for (int f = 10; f < kFrames; ++f) {
    spread = std::max(spread, std::abs(trace[0][f] - plateau(trace[0])));
  }
  std::printf("  - near-constant plateau (max dev %.2f ms): %s\n", spread,
              spread < 0.1 * plateau(trace[0]) ? "PASS" : "FAIL");
  return 0;
}
