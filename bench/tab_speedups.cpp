// Reproduces the speedup statements of Sec. IV text and the abstract
// ("outperforming individual GPU and quad-core CPU executions for more than
// 2 and 5 times"), plus the scheduling-policy and design-choice ablations
// DESIGN.md calls out (adaptive LP vs proportional vs equidistant; σ/σ^r SF
// deferral on/off).
#include "bench/bench_util.hpp"

int main() {
  using namespace feves;
  using namespace feves::bench;

  print_header("Speedup table — CPU+GPU systems vs their parts (32x32 SA)",
               "paper: SysHK 1.3x GPU_K / 3x CPU_H (avg over RFs); SysNFF up"
               " to\n2.2x GPU_F / 5x CPU_N; abstract: >2x GPU, >5x CPU");

  std::printf("%-4s  %-14s  %-14s  %-14s  %-14s\n", "RFs", "SysHK/GPU_K",
              "SysHK/CPU_H", "SysNFF/GPU_F", "SysNFF/CPU_N");
  double acc_hk_gpu = 0, acc_hk_cpu = 0;
  double best_nff_gpu = 0, best_nff_cpu = 0;
  for (int refs : {1, 2, 4, 8}) {
    const double hk = config_fps("SysHK", 32, refs);
    const double nff = config_fps("SysNFF", 32, refs);
    const double gk = config_fps("GPU_K", 32, refs);
    const double ch = config_fps("CPU_H", 32, refs);
    const double gf = config_fps("GPU_F", 32, refs);
    const double cn = config_fps("CPU_N", 32, refs);
    std::printf("%-4d  %-14.2f  %-14.2f  %-14.2f  %-14.2f\n", refs, hk / gk,
                hk / ch, nff / gf, nff / cn);
    acc_hk_gpu += hk / gk;
    acc_hk_cpu += hk / ch;
    best_nff_gpu = std::max(best_nff_gpu, nff / gf);
    best_nff_cpu = std::max(best_nff_cpu, nff / cn);
  }
  std::printf("avg   %-14.2f  %-14.2f  (max) %-8.2f  (max) %-8.2f\n",
              acc_hk_gpu / 4, acc_hk_cpu / 4, best_nff_gpu, best_nff_cpu);

  print_header("Ablation — scheduling policy (SysHK & SysNFF, 32x32, 4 RF)",
               "adaptive LP (Algorithm 2) vs per-module proportional ([9])"
               " vs\nstatic equidistant (multi-GPU related work)");
  std::printf("%-8s  %-12s  %-14s  %-12s\n", "system", "adaptive", "proportional",
              "equidistant");
  for (const char* sys : {"SysNF", "SysNFF", "SysHK"}) {
    std::printf("%-8s  %-12.1f  %-14.1f  %-12.1f\n", sys,
                config_fps(sys, 32, 4, SchedulingPolicy::kAdaptiveLp),
                config_fps(sys, 32, 4, SchedulingPolicy::kProportional),
                config_fps(sys, 32, 4, SchedulingPolicy::kEquidistant));
  }

  print_header("Ablation — σ/σ^r SF-completion deferral (Fig 5 mechanism)",
               "disabling deferral forces the full SF remainder inside the"
               " frame,\nstretching τtot when the τ2→τtot slack is tight");
  std::printf("%-8s  %-14s  %-14s\n", "system", "deferral on", "deferral off");
  for (const char* sys : {"SysNF", "SysNFF", "SysHK"}) {
    std::printf("%-8s  %-14.1f  %-14.1f\n", sys,
                config_fps(sys, 32, 4, SchedulingPolicy::kAdaptiveLp, true),
                config_fps(sys, 32, 4, SchedulingPolicy::kAdaptiveLp, false));
  }

  print_header("Ablation — shared-buffer reuse (MS_BOUNDS/LS_BOUNDS, Fig 5)",
               "disabling reuse re-transfers each module's full CF/SF span"
               " instead\nof only the fragments the device is missing");
  std::printf("%-8s  %-14s  %-14s\n", "system", "reuse on", "reuse off");
  for (const char* sys : {"SysNF", "SysNFF", "SysHK"}) {
    std::printf("%-8s  %-14.1f  %-14.1f\n", sys,
                config_fps(sys, 32, 4, SchedulingPolicy::kAdaptiveLp, true,
                           true),
                config_fps(sys, 32, 4, SchedulingPolicy::kAdaptiveLp, true,
                           false));
  }
  return 0;
}
